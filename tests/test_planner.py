"""Planner tests: rules, cost model, optimizer decisions, EXPLAIN."""

import pytest

from repro.config import EngineConfig
from repro.errors import PlanError
from repro.plan import rules
from repro.plan.cost import CostModel, TableStats
from repro.plan.explain import explain_plan
from repro.plan.optimizer import Optimizer
from repro.plan.physical import JudgeStep, LookupStep, RetrievalPlan, ScanStep, SetOpPlan
from repro.relational.catalog import Catalog
from repro.sql.binder import Binder
from repro.sql.parser import parse, parse_expression
from tests.conftest import make_city_schema, make_country_schema


@pytest.fixture
def virtual_catalog():
    catalog = Catalog()
    catalog.register_virtual(make_country_schema())
    catalog.register_virtual(make_city_schema())
    return catalog


STATS = {"countries": TableStats(row_count=10), "cities": TableStats(row_count=11)}


def plan_for(catalog, sql, config=EngineConfig()):
    bound = Binder(catalog).bind(parse(sql))
    return Optimizer(catalog, STATS, config).plan(bound)


# -- rules -------------------------------------------------------------------


def test_split_and_conjoin_round_trip():
    expr = parse_expression("a = 1 AND b = 2 AND c = 3")
    conjuncts = rules.split_conjuncts(expr)
    assert len(conjuncts) == 3
    rebuilt = rules.conjoin(conjuncts)
    assert rules.split_conjuncts(rebuilt) == conjuncts


def test_conjoin_empty_is_none():
    assert rules.conjoin([]) is None


def test_single_binding_detection():
    expr = parse_expression("t.a = 1 AND t.b > 2")
    assert rules.single_binding(expr) == "t"
    assert rules.single_binding(parse_expression("t.a = u.b")) is None
    assert rules.single_binding(parse_expression("1 = 1")) is None


def test_prompt_safety_whitelist():
    assert rules.is_prompt_safe(parse_expression("a = 1 AND b LIKE 'x%'"))
    assert rules.is_prompt_safe(parse_expression("a BETWEEN 1 AND 2 OR c IS NULL"))
    assert rules.is_prompt_safe(parse_expression("UPPER(a) = 'X'"))
    assert not rules.is_prompt_safe(parse_expression("a IN (SELECT b FROM t)"))
    assert not rules.is_prompt_safe(
        parse_expression("CASE WHEN a THEN 1 ELSE 0 END = 1")
    )


def test_strip_binding_qualifiers():
    expr = parse_expression("t.a = 1 AND t.b IN (2, 3)")
    stripped = rules.strip_binding_qualifiers(expr)
    assert rules.render_pushdown(expr) == "a = 1 AND b IN (2, 3)"
    assert rules.referenced_bindings(stripped) == set()


def test_equi_pairs_extraction():
    pairs = rules.equi_pairs(parse_expression("b.x = a.y AND b.z > 1"))
    assert len(pairs) == 1
    left, right = pairs[0]
    assert {left.table, right.table} == {"a", "b"}


def test_needed_columns_covers_all_clauses(virtual_catalog):
    bound = Binder(virtual_catalog).bind(
        parse(
            "SELECT c.city FROM cities c JOIN countries k ON k.name = c.country "
            "WHERE k.gdp > 1 GROUP BY c.city HAVING COUNT(*) > 0 ORDER BY c.city_pop"
        )
    )
    needed = rules.needed_columns(bound.query, ["c", "k"])
    assert needed["c"] == {"city", "country", "city_pop"}
    assert needed["k"] == {"name", "gdp"}


def test_correlation_detection(virtual_catalog):
    bound = Binder(virtual_catalog).bind(
        parse(
            "SELECT name FROM countries k WHERE EXISTS "
            "(SELECT 1 FROM cities c WHERE c.country = k.name)"
        )
    )
    subquery = bound.query.where.query
    assert rules.is_correlated(subquery)
    bound2 = Binder(virtual_catalog).bind(
        parse(
            "SELECT name FROM countries WHERE name IN "
            "(SELECT country FROM cities)"
        )
    )
    assert not rules.is_correlated(bound2.query.where.query)


# -- cost model ------------------------------------------------------------------


def test_selectivity_heuristics():
    model = CostModel(STATS, EngineConfig())
    schema = make_country_schema()
    eq_key = parse_expression("name = 'France'")
    assert model.selectivity(eq_key, schema) == pytest.approx(0.1)
    eq = parse_expression("continent = 'Europe'")
    assert model.selectivity(eq, schema) == pytest.approx(0.10)
    rng = parse_expression("population > 5")
    assert model.selectivity(rng, schema) == pytest.approx(0.30)
    both = parse_expression("continent = 'Europe' AND population > 5")
    assert model.selectivity(both, schema) == pytest.approx(0.03)
    assert model.selectivity(None, schema) == 1.0


def test_scan_cost_scales_with_pages():
    model = CostModel(STATS, EngineConfig(page_size=10))
    small = model.scan_cost("countries", 5, 2)
    large = model.scan_cost("countries", 50, 2)
    assert large.calls > small.calls
    assert large.completion_tokens > small.completion_tokens


def test_lookup_cost_scales_with_votes_and_batch():
    one_vote = CostModel(STATS, EngineConfig(votes=1)).lookup_cost(20, 2)
    three_votes = CostModel(STATS, EngineConfig(votes=3)).lookup_cost(20, 2)
    assert three_votes.calls == pytest.approx(3 * one_vote.calls)
    tiny_batches = CostModel(
        STATS, EngineConfig(lookup_batch_size=1)
    ).lookup_cost(20, 2)
    assert tiny_batches.calls > one_vote.calls


# -- optimizer ----------------------------------------------------------------------


def test_pushdown_lands_in_scan(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT name FROM countries WHERE continent = 'Europe' AND gdp > 100",
    )
    [scan] = plan.steps
    assert isinstance(scan, ScanStep)
    assert scan.pushdown_sql == "continent = 'Europe' AND gdp > 100"


def test_pushdown_disabled_by_config(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT name FROM countries WHERE continent = 'Europe'",
        EngineConfig.naive(),
    )
    [scan] = plan.steps
    assert scan.pushdown_sql is None
    assert scan.est_rows == 10  # full table


def test_projection_pruning(virtual_catalog):
    plan = plan_for(virtual_catalog, "SELECT name FROM countries WHERE gdp > 1")
    [scan] = plan.steps
    assert set(scan.columns) == {"name", "gdp"}


def test_point_lookup_for_pk_equality(virtual_catalog):
    plan = plan_for(
        virtual_catalog, "SELECT population FROM countries WHERE name = 'France'"
    )
    [step] = plan.steps
    assert isinstance(step, LookupStep)
    assert step.literal_keys == [("France",)]
    assert "population" in step.attributes


def test_point_lookup_for_pk_in_list(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT population FROM countries WHERE name IN ('France', 'Japan')",
    )
    [step] = plan.steps
    assert isinstance(step, LookupStep)
    assert len(step.literal_keys) == 2


def test_point_lookup_disabled_with_lookup_join(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT population FROM countries WHERE name = 'France'",
        EngineConfig().with_(enable_lookup_join=False),
    )
    [step] = plan.steps
    assert isinstance(step, ScanStep)


def test_lookup_join_on_pk_equi_join(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT c.city, k.continent FROM cities c JOIN countries k "
        "ON k.name = c.country WHERE c.city_pop > 5000",
    )
    kinds = [step.kind for step in plan.steps]
    assert kinds == ["scan", "lookup"]
    lookup = plan.steps[1]
    assert lookup.source_binding == "c"
    assert lookup.source_columns == ("country",)


def test_join_without_pk_coverage_scans_both(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT 1 FROM cities c JOIN countries k ON k.continent = c.country",
    )
    kinds = [step.kind for step in plan.steps]
    assert kinds == ["scan", "scan"]


def test_order_limit_pushdown(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT name, population FROM countries ORDER BY population DESC LIMIT 3",
    )
    [scan] = plan.steps
    assert scan.limit_hint == 3
    assert scan.order == ("population", True)


def test_limit_pushdown_unsound_with_local_filter(virtual_catalog):
    # CASE predicates cannot ship, so a local filter remains and the
    # limit hint must NOT be set.
    plan = plan_for(
        virtual_catalog,
        "SELECT name FROM countries "
        "WHERE CASE WHEN gdp > 1 THEN TRUE ELSE FALSE END ORDER BY name LIMIT 3",
    )
    [scan] = plan.steps
    assert scan.limit_hint is None


def test_limit_pushdown_skipped_for_aggregates(virtual_catalog):
    plan = plan_for(virtual_catalog, "SELECT COUNT(*) FROM countries LIMIT 1")
    [scan] = plan.steps
    assert scan.limit_hint is None


def test_correlated_subquery_rejected(virtual_catalog):
    with pytest.raises(PlanError):
        plan_for(
            virtual_catalog,
            "SELECT name FROM countries k WHERE EXISTS "
            "(SELECT 1 FROM cities c WHERE c.country = k.name)",
        )


def test_uncorrelated_subquery_planned(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT name FROM countries WHERE name IN (SELECT country FROM cities)",
    )
    assert len(plan.subplans) == 1
    assert isinstance(plan.subplans[0].plan, RetrievalPlan)


def test_setop_plans_both_sides(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT name FROM countries UNION SELECT city FROM cities ORDER BY 1 LIMIT 4",
    )
    assert isinstance(plan, SetOpPlan)
    assert plan.limit == 4


def test_judge_step_when_configured(virtual_catalog):
    config = EngineConfig().with_(enable_pushdown=False, enable_judge=True)
    plan = plan_for(
        virtual_catalog,
        "SELECT name FROM countries WHERE gdp > 100",
        config,
    )
    kinds = [step.kind for step in plan.steps]
    assert "judge" in kinds
    judge = next(step for step in plan.steps if isinstance(step, JudgeStep))
    assert judge.condition_sql == "gdp > 100"
    # The judged conjunct is removed from the local statement.
    assert plan.statement.where is None


def test_plan_estimate_aggregates_steps(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT c.city, k.continent FROM cities c JOIN countries k "
        "ON k.name = c.country",
    )
    total = plan.estimate
    assert total.calls >= sum(0 for _ in plan.steps)
    assert total.total_tokens > 0


def test_explain_renders_tree(virtual_catalog):
    plan = plan_for(
        virtual_catalog,
        "SELECT c.city, k.continent FROM cities c JOIN countries k "
        "ON k.name = c.country WHERE c.city_pop > 5000",
    )
    text = explain_plan(plan)
    assert "LLMScan" in text
    assert "LLMLookup" in text
    assert "LocalCompute" in text


def test_explain_setop(virtual_catalog):
    plan = plan_for(
        virtual_catalog, "SELECT name FROM countries UNION SELECT city FROM cities"
    )
    text = explain_plan(plan)
    assert "SetOp UNION" in text
