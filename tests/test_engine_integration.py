"""Integration tests: the decomposed engine end to end.

The central invariant (DESIGN.md §5): with a zero-noise model and no
truncation, the decomposed engine returns exactly the rows the reference
executor produces on the ground truth — for every supported query shape
and under every optimizer configuration.
"""

import pytest

from repro.baselines import DirectPromptEngine, MaterializedEngine, naive_engine
from repro.config import EngineConfig
from repro.errors import LLMBudgetExceeded, PlanError
from repro.llm.accounting import Budget
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from tests.conftest import make_engine

EQUIVALENCE_QUERIES = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT name FROM countries WHERE name IN ('France', 'Japan', 'Atlantis')",
    "SELECT name, gdp FROM countries WHERE gdp BETWEEN 100 AND 3000 AND population > 1000",
    "SELECT c.city, k.continent FROM cities c JOIN countries k ON k.name = c.country "
    "WHERE c.city_pop > 2000",
    "SELECT k.name, c.city FROM countries k LEFT JOIN cities c "
    "ON c.country = k.name AND c.is_capital = TRUE",
    "SELECT continent, COUNT(*) AS n, AVG(population) AS avg_pop FROM countries "
    "GROUP BY continent HAVING COUNT(*) >= 2",
    "SELECT COUNT(*), SUM(gdp) FROM countries WHERE continent = 'Europe'",
    "SELECT DISTINCT continent FROM countries",
    "SELECT name FROM countries ORDER BY population DESC LIMIT 3",
    "SELECT name FROM countries WHERE name IN (SELECT country FROM cities "
    "WHERE city_pop > 3000)",
    "SELECT name FROM countries WHERE population > "
    "(SELECT AVG(population) FROM countries)",
    "SELECT name FROM countries UNION SELECT city FROM cities ORDER BY 1 LIMIT 5",
    "SELECT d.continent, d.n FROM (SELECT continent, COUNT(*) AS n FROM countries "
    "GROUP BY continent) AS d WHERE d.n >= 2",
    "SELECT UPPER(name), population * 2 FROM countries WHERE continent = 'Africa'",
    "SELECT city, CASE WHEN is_capital = TRUE THEN 'capital' ELSE 'city' END "
    "FROM cities WHERE country = 'Japan'",
]


def _sorted(rows):
    return sorted(rows, key=repr)


@pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
def test_zero_noise_equivalence_default_config(perfect_engine, mini_world, sql):
    truth = MaterializedEngine(mini_world).execute(sql).rows
    result = perfect_engine.execute(sql)
    assert _sorted(result.rows) == _sorted(truth), result.explain_text


@pytest.mark.parametrize(
    "config",
    [
        EngineConfig.naive(),
        EngineConfig().with_(enable_pushdown=False),
        EngineConfig().with_(enable_lookup_join=False),
        EngineConfig().with_(page_size=2),
        EngineConfig().with_(lookup_batch_size=1),
        EngineConfig().with_(votes=3),
        EngineConfig().with_(enable_pushdown=False, enable_judge=True),
    ],
    ids=["naive", "no-pushdown", "no-lookup", "tiny-pages", "tiny-batch", "votes", "judge"],
)
@pytest.mark.parametrize(
    "sql",
    [
        EQUIVALENCE_QUERIES[0],
        EQUIVALENCE_QUERIES[4],
        EQUIVALENCE_QUERIES[6],
        EQUIVALENCE_QUERIES[10],
    ],
    ids=["filter", "join", "groupby", "subquery"],
)
def test_zero_noise_equivalence_all_configs(perfect_model, mini_world, config, sql):
    truth = MaterializedEngine(mini_world).execute(sql).rows
    engine = make_engine(perfect_model, mini_world, config)
    result = engine.execute(sql)
    assert _sorted(result.rows) == _sorted(truth), result.explain_text


def test_order_preserved_for_ordered_query(perfect_engine, mini_world):
    sql = "SELECT name FROM countries ORDER BY population DESC"
    truth = MaterializedEngine(mini_world).execute(sql).rows
    assert perfect_engine.execute(sql).rows == truth


def test_usage_attributed_per_query(perfect_engine):
    first = perfect_engine.execute("SELECT name FROM countries")
    assert first.usage.calls >= 1
    assert first.usage.total_tokens > 0
    assert perfect_engine.usage.calls >= first.usage.calls


def test_cache_reuses_across_queries(perfect_model, mini_world):
    engine = make_engine(perfect_model, mini_world)
    sql = "SELECT population FROM countries WHERE name = 'France'"
    first = engine.execute(sql)
    second = engine.execute(sql)
    assert first.rows == second.rows
    assert second.usage.total_tokens == 0  # served from cache
    assert engine.cache_stats.hits >= 1


def test_cache_disabled_pays_twice(perfect_model, mini_world):
    engine = make_engine(
        perfect_model, mini_world, EngineConfig().with_(enable_cache=False)
    )
    sql = "SELECT population FROM countries WHERE name = 'France'"
    first = engine.execute(sql)
    second = engine.execute(sql)
    assert second.usage.total_tokens == first.usage.total_tokens > 0


def test_budget_exhaustion_raises(perfect_model, mini_world):
    from repro.core.engine import LLMStorageEngine

    tight = LLMStorageEngine(
        perfect_model, config=EngineConfig(), budget=Budget(max_calls=1)
    )
    for schema in mini_world.schemas():
        tight.register_virtual_table(schema, row_estimate=10)
    tight.execute("SELECT population FROM countries WHERE name = 'France'")
    with pytest.raises(LLMBudgetExceeded):
        tight.execute(
            "SELECT c.city, k.gdp FROM cities c JOIN countries k ON k.name = c.country"
        )


def test_explain_without_execution_costs_nothing(perfect_engine):
    text = perfect_engine.explain("SELECT name FROM countries WHERE gdp > 100")
    assert "LLMScan" in text
    assert perfect_engine.usage.calls == 0


def test_correlated_subquery_raises_plan_error(perfect_engine):
    with pytest.raises(PlanError):
        perfect_engine.execute(
            "SELECT name FROM countries k WHERE EXISTS "
            "(SELECT 1 FROM cities c WHERE c.country = k.name)"
        )


def test_retry_recovers_from_refusals(mini_world):
    import dataclasses

    noise = dataclasses.replace(NoiseConfig.perfect(), refusal_rate=0.4)
    model = SimulatedLLM(mini_world, noise, seed=11)
    engine = make_engine(model, mini_world, EngineConfig().with_(max_retries=6))
    result = engine.execute("SELECT name FROM countries WHERE continent = 'Europe'")
    truth = MaterializedEngine(mini_world).execute(
        "SELECT name FROM countries WHERE continent = 'Europe'"
    ).rows
    assert _sorted(result.rows) == _sorted(truth)


def test_voting_fixes_sampling_errors(mini_world):
    noise = NoiseConfig.perfect().with_sampling_error(0.35)
    model = SimulatedLLM(mini_world, noise, seed=13)
    sql = "SELECT gdp FROM countries WHERE name = 'France'"
    truth = MaterializedEngine(mini_world).execute(sql).rows

    greedy_wrong = 0
    voted_wrong = 0
    for seed in range(8):
        model = SimulatedLLM(mini_world, noise, seed=seed)
        single = make_engine(model, mini_world, EngineConfig().with_(votes=1))
        voted = make_engine(model, mini_world, EngineConfig().with_(votes=7))
        if single.execute(sql).rows != truth:
            greedy_wrong += 1
        if voted.execute(sql).rows != truth:
            voted_wrong += 1
    assert voted_wrong < greedy_wrong


def test_validation_nulls_wild_values(mini_world):
    from repro.core.virtual import ColumnConstraint

    noise = NoiseConfig.perfect().with_gap(1.0)  # every non-key cell wrong
    model = SimulatedLLM(mini_world, noise, seed=3)
    from repro.core.engine import LLMStorageEngine

    engine = LLMStorageEngine(model, config=EngineConfig())
    for schema in mini_world.schemas():
        constraints = None
        if schema.name == "countries":
            constraints = {"population": ColumnConstraint(min_value=10**9)}
        engine.register_virtual_table(schema, row_estimate=10, constraints=constraints)
    result = engine.execute("SELECT name, population FROM countries")
    populations = [row[1] for row in result.rows]
    # With an absurd constraint every retrieved population is nulled.
    assert all(p is None or p >= 10**9 for p in populations)
    assert any("validation" in w for w in result.warnings)


def test_judge_config_filters_rows(perfect_model, mini_world):
    engine = make_engine(
        perfect_model, mini_world,
        EngineConfig().with_(enable_pushdown=False, enable_judge=True),
    )
    sql = "SELECT name FROM countries WHERE population > 100000"
    truth = MaterializedEngine(mini_world).execute(sql).rows
    assert _sorted(engine.execute(sql).rows) == _sorted(truth)


def test_direct_engine_zero_noise_small_result(perfect_model, mini_world):
    direct = DirectPromptEngine(perfect_model)
    direct.register_world_schemas(mini_world)
    sql = "SELECT name FROM countries WHERE continent = 'Africa'"
    truth = MaterializedEngine(mini_world).execute(sql).rows
    assert _sorted(direct.execute(sql).rows) == _sorted(truth)


def test_direct_engine_truncates_large_results(perfect_model, mini_world):
    direct = DirectPromptEngine(
        perfect_model, config=EngineConfig().with_(max_output_tokens=30)
    )
    direct.register_world_schemas(mini_world)
    result = direct.execute("SELECT name, continent, population, gdp FROM countries")
    assert len(result.rows) < 10
    assert any("truncated" in w for w in result.warnings)


def test_naive_engine_costs_more_than_optimized(perfect_model, mini_world):
    sql = "SELECT name FROM countries WHERE continent = 'Africa'"
    optimized = make_engine(perfect_model, mini_world)
    naive = naive_engine(perfect_model)
    for schema in mini_world.schemas():
        naive.register_virtual_table(schema, row_estimate=10)
    opt_result = optimized.execute(sql)
    naive_result = naive.execute(sql)
    assert _sorted(opt_result.rows) == _sorted(naive_result.rows)
    assert naive_result.usage.total_tokens > opt_result.usage.total_tokens


def test_result_render_includes_usage(perfect_engine):
    result = perfect_engine.execute("SELECT name FROM countries LIMIT 2")
    text = result.render()
    assert "calls" in text
    assert "name" in text
