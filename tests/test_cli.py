"""CLI tests: one-shot mode, REPL commands, error handling."""

import io

import pytest

from repro.cli import build_engine, main, repl, run_statement


def test_one_shot_command(capsys):
    code = main(
        ["--world", "geography", "--gap", "0", "--sampling", "0",
         "-c", "SELECT population FROM countries WHERE name = 'France'"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "68000" in out


def test_one_shot_bad_sql_returns_error(capsys):
    code = main(["--world", "geography", "-c", "SELEC broken"])
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_unknown_world_exits():
    with pytest.raises(SystemExit):
        build_engine("narnia", 0, False, 0.0, 0.0, 1)


def test_naive_flag_builds_naive_config():
    engine = build_engine("geography", 0, True, 0.0, 0.0, 1)
    assert not engine.config.enable_pushdown


def test_votes_flag():
    engine = build_engine("geography", 0, False, 0.0, 0.0, 5)
    assert engine.config.votes == 5


def test_run_statement_dot_commands():
    engine = build_engine("geography", 0, False, 0.0, 0.0, 1)
    out = io.StringIO()
    run_statement(engine, ".tables", out)
    assert "countries(" in out.getvalue()
    out = io.StringIO()
    run_statement(engine, ".usage", out)
    assert "calls" in out.getvalue()
    out = io.StringIO()
    run_statement(engine, ".explain SELECT COUNT(*) FROM cities", out)
    assert "LLMScan" in out.getvalue()
    out = io.StringIO()
    run_statement(engine, ".explain", out)
    assert "usage:" in out.getvalue()
    out = io.StringIO()
    run_statement(engine, "   ", out)
    assert out.getvalue() == ""


def test_repl_handles_errors_and_quits():
    engine = build_engine("geography", 0, False, 0.0, 0.0, 1)
    stdin = io.StringIO("SELECT nope FROM countries\n.quit\n")
    out = io.StringIO()
    repl(engine, stdin=stdin, out=out)
    text = out.getvalue()
    assert "error:" in text
    assert "sql>" in text


def test_repl_executes_query():
    engine = build_engine("geography", 0, False, 0.0, 0.0, 1)
    stdin = io.StringIO("SELECT name FROM countries WHERE name = 'Japan';\n")
    out = io.StringIO()
    repl(engine, stdin=stdin, out=out)
    assert "Japan" in out.getvalue()


def test_storage_mode_flag_builds_tier():
    engine = build_engine(
        "geography", 0, False, 0.0, 0.0, 1, storage_mode="materialize"
    )
    assert engine.config.storage_mode == "materialize"
    assert engine.storage.mode == "materialize"


def test_storage_knob_flags_are_plumbed():
    engine = build_engine(
        "geography",
        0,
        False,
        0.0,
        0.0,
        1,
        storage_mode="result_cache",
        storage_budget_bytes=1234,
        storage_ttl_s=7.5,
    )
    assert engine.config.storage_budget_bytes == 1234
    assert engine.config.storage_ttl_s == 7.5
    assert engine.storage.budget_bytes == 1234


def test_bad_storage_mode_flag_exits():
    with pytest.raises(SystemExit):
        main(["--world", "geography", "--storage-mode", "bogus", "-c", "SELECT 1"])


def test_bad_storage_budget_flag_reports_friendly_error(capsys):
    code = main(
        ["--world", "geography", "--storage-budget-bytes", "0", "-c", "SELECT 1"]
    )
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_bad_storage_budget_raises_config_error():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        build_engine(
            "geography",
            0,
            False,
            0.0,
            0.0,
            1,
            storage_mode="materialize",
            storage_budget_bytes=-1,
        )


def test_bad_storage_ttl_raises_config_error():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        build_engine(
            "geography", 0, False, 0.0, 0.0, 1, storage_ttl_s=-2.0
        )


def test_one_shot_with_storage_mode(capsys):
    code = main(
        ["--world", "geography", "--gap", "0", "--sampling", "0",
         "--storage-mode", "materialize",
         "-c", "SELECT population FROM countries WHERE name = 'France'"]
    )
    assert code == 0
    assert "68000" in capsys.readouterr().out


def test_repl_storage_command():
    engine = build_engine(
        "geography", 0, False, 0.0, 0.0, 1, storage_mode="materialize"
    )
    out = io.StringIO()
    run_statement(engine, ".storage", out)
    text = out.getvalue()
    assert "mode=materialize" in text
    assert "fragments" in text
