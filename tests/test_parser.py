"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


def test_minimal_select():
    query = parse("SELECT 1")
    assert isinstance(query, ast.Query)
    assert query.select[0].expr == ast.Literal(1)
    assert query.from_clause is None


def test_select_star():
    query = parse("SELECT * FROM t")
    assert query.select[0].expr == ast.Star()
    assert query.from_clause == ast.NamedTable(name="t")


def test_select_qualified_star():
    query = parse("SELECT t.* FROM t")
    assert query.select[0].expr == ast.Star(table="t")


def test_select_alias_with_and_without_as():
    query = parse("SELECT a AS x, b y FROM t")
    assert query.select[0].alias == "x"
    assert query.select[1].alias == "y"


def test_table_alias_forms():
    query = parse("SELECT 1 FROM t AS u")
    assert query.from_clause == ast.NamedTable(name="t", alias="u")
    query = parse("SELECT 1 FROM t u")
    assert query.from_clause == ast.NamedTable(name="t", alias="u")


def test_where_precedence_or_and():
    expr = parse_expression("a OR b AND c")
    assert isinstance(expr, ast.BinaryOp)
    assert expr.op == "OR"
    assert isinstance(expr.right, ast.BinaryOp)
    assert expr.right.op == "AND"


def test_not_binds_tighter_than_and():
    expr = parse_expression("NOT a AND b")
    assert expr.op == "AND"
    assert isinstance(expr.left, ast.UnaryOp)


def test_comparison_normalizes_bang_equals():
    expr = parse_expression("a != b")
    assert expr.op == "<>"


def test_arithmetic_precedence():
    expr = parse_expression("1 + 2 * 3")
    assert expr.op == "+"
    assert isinstance(expr.right, ast.BinaryOp)
    assert expr.right.op == "*"


def test_arithmetic_left_associativity():
    expr = parse_expression("10 - 4 - 3")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.BinaryOp)
    assert expr.left.right == ast.Literal(4)


def test_parenthesized_expression():
    expr = parse_expression("(1 + 2) * 3")
    assert expr.op == "*"
    assert isinstance(expr.left, ast.BinaryOp)


def test_unary_minus_folds_into_literal():
    assert parse_expression("-5") == ast.Literal(-5)
    assert parse_expression("-2.5") == ast.Literal(-2.5)


def test_unary_minus_on_column():
    expr = parse_expression("-x")
    assert expr == ast.UnaryOp(op="-", operand=ast.ColumnRef(name="x"))


def test_between():
    expr = parse_expression("x BETWEEN 1 AND 10")
    assert expr == ast.Between(
        operand=ast.ColumnRef(name="x"), low=ast.Literal(1), high=ast.Literal(10)
    )


def test_not_between():
    expr = parse_expression("x NOT BETWEEN 1 AND 10")
    assert expr.negated is True


def test_in_list():
    expr = parse_expression("x IN (1, 2, 3)")
    assert isinstance(expr, ast.InList)
    assert [item.value for item in expr.items] == [1, 2, 3]


def test_not_in_list():
    expr = parse_expression("x NOT IN ('a')")
    assert expr.negated is True


def test_in_subquery():
    expr = parse_expression("x IN (SELECT y FROM t)")
    assert isinstance(expr, ast.InSubquery)


def test_like_and_not_like():
    assert isinstance(parse_expression("name LIKE 'A%'"), ast.Like)
    assert parse_expression("name NOT LIKE 'A%'").negated is True


def test_is_null_and_is_not_null():
    assert parse_expression("x IS NULL") == ast.IsNull(operand=ast.ColumnRef(name="x"))
    assert parse_expression("x IS NOT NULL").negated is True


def test_exists():
    expr = parse_expression("EXISTS (SELECT 1 FROM t)")
    assert isinstance(expr, ast.Exists)


def test_scalar_subquery():
    expr = parse_expression("(SELECT MAX(x) FROM t)")
    assert isinstance(expr, ast.ScalarSubquery)


def test_case_searched():
    expr = parse_expression("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END")
    assert isinstance(expr, ast.CaseWhen)
    assert expr.operand is None
    assert len(expr.branches) == 1
    assert expr.else_result == ast.Literal("neg")


def test_case_simple_form():
    expr = parse_expression("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
    assert expr.operand == ast.ColumnRef(name="x")
    assert len(expr.branches) == 2
    assert expr.else_result is None


def test_case_without_when_raises():
    with pytest.raises(ParseError):
        parse_expression("CASE ELSE 1 END")


def test_cast():
    expr = parse_expression("CAST(x AS INTEGER)")
    assert expr == ast.Cast(operand=ast.ColumnRef(name="x"), type_name="INTEGER")


def test_cast_bad_type_raises():
    with pytest.raises(ParseError):
        parse_expression("CAST(x AS BANANA)")


def test_function_call():
    expr = parse_expression("upper(name)")
    assert expr == ast.FunctionCall(name="UPPER", args=[ast.ColumnRef(name="name")])


def test_count_star_and_distinct():
    expr = parse_expression("COUNT(*)")
    assert expr == ast.FunctionCall(name="COUNT", args=[ast.Star()])
    expr = parse_expression("COUNT(DISTINCT x)")
    assert expr.distinct is True


def test_joins_parse_left_deep():
    query = parse(
        "SELECT 1 FROM a JOIN b ON b.x = a.x LEFT JOIN c ON c.y = b.y"
    )
    outer = query.from_clause
    assert isinstance(outer, ast.Join)
    assert outer.kind == "left"
    inner = outer.left
    assert isinstance(inner, ast.Join)
    assert inner.kind == "inner"


def test_cross_join_and_comma():
    query = parse("SELECT 1 FROM a CROSS JOIN b")
    assert query.from_clause.kind == "cross"
    query = parse("SELECT 1 FROM a, b")
    assert query.from_clause.kind == "cross"


def test_join_requires_on():
    with pytest.raises(ParseError):
        parse("SELECT 1 FROM a JOIN b")


def test_derived_table():
    query = parse("SELECT 1 FROM (SELECT x FROM t) AS d")
    assert isinstance(query.from_clause, ast.SubqueryTable)
    assert query.from_clause.alias == "d"


def test_derived_table_requires_alias():
    with pytest.raises(ParseError):
        parse("SELECT 1 FROM (SELECT x FROM t)")


def test_group_by_having():
    query = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
    assert len(query.group_by) == 1
    assert query.having is not None


def test_order_by_directions_and_nulls():
    query = parse("SELECT a FROM t ORDER BY a DESC NULLS LAST, b ASC NULLS FIRST")
    first, second = query.order_by
    assert first.descending and first.nulls_last is True
    assert not second.descending and second.nulls_last is False


def test_limit_offset():
    query = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
    assert query.limit == 10
    assert query.offset == 5


def test_limit_requires_integer():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t LIMIT x")


def test_union_and_union_all():
    statement = parse("SELECT a FROM t UNION SELECT b FROM u")
    assert isinstance(statement, ast.SetOperation)
    assert statement.op == "union" and statement.all is False
    statement = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
    assert statement.all is True


def test_set_operation_chain_is_left_nested():
    statement = parse("SELECT 1 UNION SELECT 2 EXCEPT SELECT 3")
    assert statement.op == "except"
    assert isinstance(statement.left, ast.SetOperation)
    assert statement.left.op == "union"


def test_order_limit_attach_to_set_operation():
    statement = parse("SELECT a FROM t UNION SELECT b FROM u ORDER BY 1 LIMIT 2")
    assert statement.order_by and statement.limit == 2
    assert isinstance(statement.left, ast.Query)
    assert statement.left.limit is None


def test_distinct():
    query = parse("SELECT DISTINCT a FROM t")
    assert query.distinct is True


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse("SELECT 1 FROM t 42")


def test_trailing_semicolon_allowed():
    assert isinstance(parse("SELECT 1;"), ast.Query)


def test_boolean_and_null_literals():
    assert parse_expression("TRUE") == ast.Literal(True)
    assert parse_expression("FALSE") == ast.Literal(False)
    assert parse_expression("NULL") == ast.Literal(None)


def test_string_concat_operator():
    expr = parse_expression("a || b || c")
    assert expr.op == "||"
    assert expr.left.op == "||"


def test_error_carries_position():
    with pytest.raises(ParseError) as excinfo:
        parse("SELECT FROM t")
    assert excinfo.value.line == 1
