"""Tests for types, coercion, schemas and tables."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import (
    DataType,
    coerce_value,
    infer_type,
    is_instance_of,
    values_equal,
)


# -- types -------------------------------------------------------------------


def test_infer_type():
    assert infer_type(None) is None
    assert infer_type(True) is DataType.BOOLEAN
    assert infer_type(3) is DataType.INTEGER
    assert infer_type(3.5) is DataType.REAL
    assert infer_type("x") is DataType.TEXT


def test_is_instance_of_bool_is_not_integer():
    assert is_instance_of(True, DataType.BOOLEAN)
    assert not is_instance_of(True, DataType.INTEGER)


@pytest.mark.parametrize(
    "value,dtype,expected",
    [
        ("42", DataType.INTEGER, 42),
        ("1,234", DataType.INTEGER, 1234),
        ("3.5", DataType.REAL, 3.5),
        (" 2.5 ", DataType.REAL, 2.5),
        (7, DataType.REAL, 7.0),
        (7.0, DataType.INTEGER, 7),
        ("true", DataType.BOOLEAN, True),
        ("No", DataType.BOOLEAN, False),
        (1, DataType.BOOLEAN, True),
        (3, DataType.TEXT, "3"),
        (True, DataType.TEXT, "true"),
    ],
)
def test_coerce_value(value, dtype, expected):
    assert coerce_value(value, dtype) == expected


def test_coerce_failure_returns_none_nonstrict():
    assert coerce_value("not a number", DataType.INTEGER) is None
    assert coerce_value("maybe", DataType.BOOLEAN) is None


def test_coerce_failure_raises_strict():
    with pytest.raises(ValueError):
        coerce_value("nope", DataType.INTEGER, strict=True)


def test_coerce_none_passes_through():
    assert coerce_value(None, DataType.INTEGER) is None


def test_values_equal_tolerance():
    assert values_equal(100, 104, float_tolerance=0.05)
    assert not values_equal(100, 110, float_tolerance=0.05)
    assert values_equal(None, None)
    assert not values_equal(None, 0)
    assert values_equal(1, 1.0)
    assert not values_equal(True, 1.0)


# -- schema -----------------------------------------------------------------


def make_schema():
    return TableSchema(
        name="t",
        columns=(
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.TEXT),
            Column("score", DataType.REAL),
        ),
        primary_key=("id",),
    )


def test_schema_rejects_duplicate_columns():
    with pytest.raises(SchemaError):
        TableSchema(
            name="t",
            columns=(Column("a", DataType.TEXT), Column("A", DataType.TEXT)),
        )


def test_schema_rejects_unknown_primary_key():
    with pytest.raises(SchemaError):
        TableSchema(
            name="t", columns=(Column("a", DataType.TEXT),), primary_key=("b",)
        )


def test_schema_rejects_empty_columns():
    with pytest.raises(SchemaError):
        TableSchema(name="t", columns=())


def test_column_lookup_case_insensitive():
    schema = make_schema()
    assert schema.column("NAME").name == "name"
    assert schema.column_index("Id") == 0


def test_unknown_column_raises():
    with pytest.raises(SchemaError):
        make_schema().column("missing")


def test_render_signature_and_ddl():
    schema = make_schema()
    assert schema.render_signature() == "t(id INTEGER, name TEXT, score REAL)"
    assert "PRIMARY KEY (id)" in schema.render_ddl()
    assert "id INTEGER NOT NULL" in schema.render_ddl()


def test_validate_row_arity():
    with pytest.raises(SchemaError):
        make_schema().validate_row((1, "x"))


def test_validate_row_not_null():
    with pytest.raises(SchemaError):
        make_schema().validate_row((None, "x", 1.0))


def test_validate_row_type_mismatch():
    with pytest.raises(SchemaError):
        make_schema().validate_row((1, 2, 1.0))


def test_validate_row_int_promotes_to_real():
    row = make_schema().validate_row((1, "x", 5))
    assert row == (1, "x", 5.0)
    assert isinstance(row[2], float)


def test_validate_row_with_coercion():
    row = make_schema().validate_row(("3", "x", "2.5"), coerce=True)
    assert row == (3, "x", 2.5)


# -- table ---------------------------------------------------------------------


def test_table_insert_and_len():
    table = Table(make_schema(), [(1, "a", 1.0), (2, "b", None)])
    assert len(table) == 2
    assert table.column_values("name") == ["a", "b"]


def test_table_from_dicts():
    table = Table.from_dicts(
        make_schema(), [{"id": 1, "name": "a"}, {"id": 2, "score": 3.0}]
    )
    assert table.rows[0] == (1, "a", None)
    assert table.rows[1] == (2, None, 3.0)


def test_table_from_dicts_unknown_column():
    with pytest.raises(SchemaError):
        Table.from_dicts(make_schema(), [{"id": 1, "oops": 2}])


def test_table_key_index_and_lookup():
    table = Table(make_schema(), [(1, "a", 1.0), (2, "b", 2.0)])
    assert table.lookup((2,)) == (2, "b", 2.0)
    assert table.lookup((9,)) is None
    index = table.build_key_index()
    assert index[(1,)][1] == "a"


def test_table_render_text_truncates():
    rows = [(i, f"n{i}", float(i)) for i in range(30)]
    text = Table(make_schema(), rows).render_text(max_rows=5)
    assert "more rows" in text


def test_sorted_rows_handles_nulls_and_mixed():
    table = Table(make_schema(), [(2, None, None), (1, "a", 0.5)])
    ordered = table.sorted_rows()
    assert ordered[0][0] == 1
