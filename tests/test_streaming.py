"""Streaming row pipeline: byte-identity, early exit, partial coverage.

The acceptance bar mirrors sharding's: streaming must never change a
result — rows (values **and** Python types) match the materialized
engine for LIMIT/EXISTS/IN shapes across storage modes and shard
configurations — while fetching strictly fewer pages on early-exit
workloads.  A stream cut short must leave the storage tier *better*
(a reusable prefix fragment), never worse.
"""

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.core.streams import RowQuota, RowStream, materialized_stream, take_until
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.plan.physical import LookupStep, ScanStep, ShardedScanStep

SEED = 9

#: A filter the optimizer cannot push (CASE is not prompt-safe), so the
#: LIMIT cannot become a model-side limit hint — the streaming case.
RESIDUAL = "CASE WHEN {} THEN 1 ELSE 0 END = 1"

LIMIT_QUERIES = [
    "SELECT title, year FROM movies WHERE "
    + RESIDUAL.format("year >= 1990")
    + " LIMIT 5",
    # Mixed: one pushable conjunct plus a residual one.
    "SELECT title FROM movies WHERE year >= 1980 AND "
    + RESIDUAL.format("rating >= 5")
    + " LIMIT 4",
    # Scalar-subquery filter: resolved first, then the outer streams.
    "SELECT title FROM movies WHERE year > (SELECT MIN(born) FROM directors) "
    "LIMIT 3",
    "SELECT DISTINCT genre FROM movies WHERE "
    + RESIDUAL.format("rating >= 5")
    + " LIMIT 3",
    "SELECT title FROM movies WHERE "
    + RESIDUAL.format("year >= 1990")
    + " LIMIT 4 OFFSET 3",
    # Rare match: the stream drains to exhaustion without a quota hit.
    "SELECT title FROM movies WHERE " + RESIDUAL.format("year < 1900") + " LIMIT 5",
]

SUBQUERY_QUERIES = [
    "SELECT 1 WHERE EXISTS (SELECT title FROM movies WHERE "
    + RESIDUAL.format("rating > 8")
    + ")",
    "SELECT 1 WHERE NOT EXISTS (SELECT title FROM movies WHERE year < 1800)",
    "SELECT name FROM directors WHERE name IN (SELECT director FROM movies "
    "WHERE " + RESIDUAL.format("year >= 2000") + ")",
]

WORKLOAD = LIMIT_QUERIES + SUBQUERY_QUERIES


def build_engine(config, noise=None, world_name="movies"):
    world = all_worlds()[world_name]
    model = SimulatedLLM(
        world, noise=noise if noise is not None else NoiseConfig.perfect(), seed=SEED
    )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def tagged(rows):
    """Type-tagged rows: 3 and 3.0 must not compare equal."""
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def run_workload(config, queries=WORKLOAD, noise=None):
    engine = build_engine(config, noise=noise)
    results = []
    for sql in queries:
        result = engine.execute(sql)
        results.append((tagged(result.rows), list(result.column_names)))
    return results, engine.usage


# ---------------------------------------------------------------------------
# Byte-identity across configurations
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("storage_mode", ["off", "materialize"])
@pytest.mark.parametrize("scan_shards", [1, 4])
def test_streaming_byte_identity(storage_mode, scan_shards):
    base = EngineConfig(
        storage_mode=storage_mode, scan_shards=scan_shards, shard_min_rows=8
    )
    streamed, streamed_usage = run_workload(base.with_(enable_streaming=True))
    materialized, materialized_usage = run_workload(
        base.with_(enable_streaming=False)
    )
    assert streamed == materialized
    assert streamed_usage.calls <= materialized_usage.calls


def test_streaming_byte_identity_warm_passes():
    """Second pass over a materializing tier stays identical too."""
    config = EngineConfig(storage_mode="materialize")
    cold_reference, _ = run_workload(config.with_(enable_streaming=False))

    engine = build_engine(config.with_(enable_streaming=True))
    for expected_pass in range(2):
        for sql, (rows, names) in zip(WORKLOAD, cold_reference):
            result = engine.execute(sql)
            assert tagged(result.rows) == rows, f"pass {expected_pass}: {sql}"
            assert list(result.column_names) == names


def test_streaming_byte_identity_under_noise():
    """The streamed pages are a prefix of the materialized page chain,
    so identity holds even when the model injects noise."""
    streamed, _ = run_workload(
        EngineConfig(enable_streaming=True), noise=NoiseConfig()
    )
    materialized, _ = run_workload(
        EngineConfig(enable_streaming=False), noise=NoiseConfig()
    )
    assert streamed == materialized


# ---------------------------------------------------------------------------
# Early exit: fewer calls, observable pages
# ---------------------------------------------------------------------------


def test_limit_early_exit_reduces_calls():
    sql = LIMIT_QUERIES[0]
    on = build_engine(EngineConfig(enable_streaming=True))
    off = build_engine(EngineConfig(enable_streaming=False))
    on.execute(sql)
    off.execute(sql)
    assert on.usage.calls < off.usage.calls
    assert on.usage.pages_fetched >= 1
    assert on.usage.pages_skipped >= 1
    assert off.usage.pages_skipped == 0


def test_exists_probe_costs_one_page():
    engine = build_engine(EngineConfig(enable_streaming=True))
    result = engine.execute(SUBQUERY_QUERIES[0])
    assert len(result.rows) == 1
    assert engine.usage.calls == 1


def test_pages_rendered_in_usage():
    engine = build_engine(EngineConfig(enable_streaming=True))
    engine.execute(LIMIT_QUERIES[0])
    text = engine.usage.render()
    assert "pages:" in text and "skipped" in text


def test_lookup_stream_early_exit():
    """EXISTS over more point keys than one batch stops after batch 1."""
    world = all_worlds()["movies"]
    names = [
        row[world.table("directors").schema.column_index("name")]
        for row in world.table("directors").rows[:20]
    ]
    in_list = ", ".join(f"'{name}'" for name in names)
    sql = (
        "SELECT 1 WHERE EXISTS (SELECT born FROM directors "
        f"WHERE name IN ({in_list}))"
    )
    on = build_engine(EngineConfig(enable_streaming=True))
    off = build_engine(EngineConfig(enable_streaming=False))
    result_on = on.execute(sql)
    result_off = off.execute(sql)
    assert tagged(result_on.rows) == tagged(result_off.rows)
    assert on.usage.calls == 1
    assert off.usage.calls == 2  # 20 keys = 2 batches of 16


# ---------------------------------------------------------------------------
# Plan shapes and pricing
# ---------------------------------------------------------------------------


def test_residual_limit_gets_stream_annotation():
    engine = build_engine(EngineConfig())
    plan = engine.plan(LIMIT_QUERIES[0])
    (step,) = plan.steps
    assert isinstance(step, ScanStep)
    assert step.stop_after_rows == 5
    assert step.limit_hint is None
    assert any("stream[movies]: early-exit rows<=5" in note for note in plan.notes)
    assert "stream[early-exit rows<=5]" in engine.explain(LIMIT_QUERIES[0])


def test_offset_joins_the_quota():
    engine = build_engine(EngineConfig())
    plan = engine.plan(LIMIT_QUERIES[4])
    assert plan.steps[0].stop_after_rows == 7  # LIMIT 4 OFFSET 3


def test_pushable_limit_keeps_model_side_hint():
    engine = build_engine(EngineConfig())
    plan = engine.plan("SELECT title FROM movies WHERE year >= 1990 LIMIT 5")
    (step,) = plan.steps
    assert step.limit_hint == 5
    assert step.stop_after_rows is None


def test_exists_subplan_gets_quota_of_one():
    engine = build_engine(EngineConfig())
    plan = engine.plan(SUBQUERY_QUERIES[0])
    (subplan,) = plan.subplans
    assert subplan.plan.steps[0].stop_after_rows == 1


def test_exists_with_nested_offset_needs_offset_plus_one_witnesses():
    """Regression: OFFSET rows are discarded locally, so an EXISTS
    probe must stream past them before its witness counts."""
    sql = (
        "SELECT 1 WHERE EXISTS (SELECT title FROM movies WHERE "
        + RESIDUAL.format("year = 1968")
        + " OFFSET 1)"
    )
    on = build_engine(EngineConfig(enable_streaming=True))
    off = build_engine(EngineConfig(enable_streaming=False))
    assert tagged(on.execute(sql).rows) == tagged(off.execute(sql).rows)
    plan = on.plan(sql)
    assert plan.subplans[0].plan.steps[0].stop_after_rows == 2


def test_exists_with_nested_limit_zero_is_not_streamed():
    sql = (
        "SELECT 1 WHERE EXISTS (SELECT title FROM movies WHERE "
        + RESIDUAL.format("year >= 1990")
        + " LIMIT 0)"
    )
    on = build_engine(EngineConfig(enable_streaming=True))
    off = build_engine(EngineConfig(enable_streaming=False))
    assert on.plan(sql).subplans[0].plan.steps[0].stop_after_rows is None
    assert tagged(on.execute(sql).rows) == tagged(off.execute(sql).rows)


def test_streaming_disabled_leaves_plan_alone():
    engine = build_engine(EngineConfig(enable_streaming=False))
    plan = engine.plan(LIMIT_QUERIES[0])
    assert plan.steps[0].stop_after_rows is None
    assert not any("stream[" in note for note in plan.notes)


def test_naive_config_disables_streaming():
    assert EngineConfig.naive().enable_streaming is False


def test_pipeline_breakers_stay_materialized():
    engine = build_engine(EngineConfig())
    breakers = [
        # local ORDER BY (not pushable alongside a residual filter)
        "SELECT title FROM movies WHERE "
        + RESIDUAL.format("year >= 1990")
        + " ORDER BY year, title LIMIT 5",
        # aggregation
        "SELECT COUNT(*) FROM movies WHERE "
        + RESIDUAL.format("year >= 1990")
        + " LIMIT 5",
        "SELECT genre FROM movies GROUP BY genre LIMIT 3",
    ]
    for sql in breakers:
        plan = engine.plan(sql)
        for step in plan.steps:
            assert getattr(step, "stop_after_rows", None) is None, sql


def test_quota_scan_is_not_sharded():
    engine = build_engine(EngineConfig(scan_shards=4, shard_min_rows=8))
    plan = engine.plan(LIMIT_QUERIES[0])
    (step,) = plan.steps
    assert isinstance(step, ScanStep) and not isinstance(step, ShardedScanStep)
    assert step.stop_after_rows == 5


def test_limit_zero_is_not_streamed():
    engine = build_engine(EngineConfig())
    sql = "SELECT title FROM movies WHERE " + RESIDUAL.format("year >= 1990") + " LIMIT 0"
    plan = engine.plan(sql)
    assert plan.steps[0].stop_after_rows is None
    assert engine.execute(sql).rows == []


def test_streamed_estimate_cheaper_than_full_scan():
    engine = build_engine(EngineConfig())
    streamed = engine.plan(LIMIT_QUERIES[0]).estimate
    full = engine.plan(
        "SELECT title, year FROM movies WHERE "
        + RESIDUAL.format("year >= 1990")
    ).estimate
    assert streamed.calls < full.calls
    assert streamed.total_tokens < full.total_tokens


def test_lookup_quota_annotation_requires_multiple_batches():
    engine = build_engine(EngineConfig())
    plan = engine.plan(
        "SELECT 1 WHERE EXISTS (SELECT born FROM directors WHERE name IN "
        "('A', 'B'))"
    )
    (subplan,) = plan.subplans
    (step,) = subplan.plan.steps
    assert isinstance(step, LookupStep)
    assert step.stop_after_rows is None  # 2 keys = 1 batch: nothing to skip


# ---------------------------------------------------------------------------
# Partial-coverage fragments: early exit never poisons the cache
# ---------------------------------------------------------------------------


def test_early_exit_writes_partial_fragment_and_resumes():
    config = EngineConfig(storage_mode="materialize", enable_streaming=True)
    engine = build_engine(config)
    full_sql = "SELECT title FROM movies WHERE " + RESIDUAL.format("year >= 1990")

    engine.execute(full_sql + " LIMIT 5")
    first = engine.usage
    assert first.calls < 12  # early exit on a 12-page table

    # The cut-short stream left a *prefix* fragment: the follow-up full
    # scan resumes at its cursor and pays only the remaining pages.
    result = engine.execute(full_sql)
    delta = engine.usage.minus(first)
    assert delta.calls == 12 - first.calls
    assert delta.fragment_hits >= 1
    assert delta.calls_saved >= first.calls

    cold = build_engine(config.with_(storage_mode="off"))
    cold_result = cold.execute(full_sql)
    assert tagged(result.rows) == tagged(cold_result.rows)
    assert cold.usage.calls == 12


def test_narrower_scan_does_not_drop_wider_prefix_columns():
    """Regression: an early-exited narrower scan must not replace a
    wider same-shape prefix fragment — equal-length prefixes merge
    their columns instead (same deterministic enumeration)."""
    config = EngineConfig(storage_mode="materialize", enable_streaming=True)
    engine = build_engine(config)
    # Wider early-exit first: fragment covers (title, year).
    engine.execute(
        "SELECT title, year FROM movies WHERE "
        + RESIDUAL.format("year >= 1990")
        + " LIMIT 5"
    )
    # Narrower early-exit over the same scan shape (no pushdown, no
    # order): must not strand the paid-for year column.
    engine.execute(
        "SELECT title FROM movies WHERE "
        + RESIDUAL.format("title LIKE 'B%'")
        + " LIMIT 3"
    )
    from repro.llm.cache import resolve_model_name
    from repro.storage.tier import StorageTier

    scope = StorageTier.fragment_scope(
        resolve_model_name(engine._session.model), config, engine.catalog_scope
    )
    fragment = engine.storage.scan_fragment(scope, "movies", None, None)
    assert fragment is not None
    assert fragment.covers_columns(["title", "year"])


def test_sharded_stream_close_mid_group_keeps_whole_group():
    """Chains of one dispatch group all ran (and were paid) before the
    first page is yielded; closing at that yield must still persist and
    account every chain of the group."""
    from repro.core.operators import ModelClient
    from repro.core.virtual import VirtualTable
    from repro.llm.accounting import UsageMeter

    world = all_worlds()["movies"]
    config = EngineConfig(
        scan_shards=4, shard_min_rows=8, max_in_flight=4
    )
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=SEED)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    plan = engine.plan("SELECT title FROM movies")
    (step,) = plan.steps
    assert isinstance(step, ShardedScanStep) and len(step.shards) == 4
    virtual = VirtualTable.build(step.schema, row_estimate=240)

    meter = UsageMeter()
    client = ModelClient(model, meter, config)
    try:
        outcomes = []
        stream = client.open_sharded_scan_stream(step, virtual, outcomes)
        assert stream.next_page()
        stream.close()
    finally:
        client.close()
    # One group of width 4 ran as a unit: every outcome is recorded.
    assert len(outcomes) == 4
    assert meter.snapshot().pages_skipped == 0  # nothing was avoided


def test_lookup_stream_early_exit_records_skipped_batches():
    world = all_worlds()["movies"]
    names = [
        row[world.table("directors").schema.column_index("name")]
        for row in world.table("directors").rows[:20]
    ]
    in_list = ", ".join(f"'{name}'" for name in names)
    engine = build_engine(EngineConfig(enable_streaming=True))
    engine.execute(
        "SELECT 1 WHERE EXISTS (SELECT born FROM directors "
        f"WHERE name IN ({in_list}))"
    )
    assert engine.usage.pages_skipped == 1  # second batch never dispatched


def test_exhausted_stream_writes_complete_fragment():
    config = EngineConfig(storage_mode="materialize", enable_streaming=True)
    engine = build_engine(config)
    # Rare-match LIMIT: the quota never trips, the stream drains, and
    # the writeback must be a *complete* fragment.
    rare_sql = "SELECT title FROM movies WHERE " + RESIDUAL.format("year < 1900") + " LIMIT 5"
    engine.execute(rare_sql)
    first_calls = engine.usage.calls

    # Same scan shape, no limit: served entirely from the fragment.
    engine.execute("SELECT title FROM movies WHERE " + RESIDUAL.format("year < 1900"))
    assert engine.usage.calls == first_calls


def test_sharded_stream_early_exit_keeps_finished_shards():
    """Closing a sharded stream persists completed chains as per-shard
    fragments (the partial-failure machinery), so a re-run only pays
    the chains that never started."""
    from repro.core.operators import ModelClient
    from repro.core.virtual import VirtualTable
    from repro.llm.accounting import UsageMeter
    from repro.llm.cache import resolve_model_name
    from repro.storage.tier import StorageTier

    world = all_worlds()["movies"]
    config = EngineConfig(
        scan_shards=4, shard_min_rows=8, storage_mode="materialize"
    )
    tier = StorageTier.from_config(config)
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=SEED)
    engine = LLMStorageEngine(model, config=config, storage=tier)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    plan = engine.plan("SELECT title FROM movies")
    (step,) = plan.steps
    assert isinstance(step, ShardedScanStep)
    virtual = VirtualTable.build(step.schema, row_estimate=240)
    scope = StorageTier.fragment_scope(resolve_model_name(model), config)

    meter = UsageMeter()
    client = ModelClient(model, meter, config, storage=tier)
    try:
        outcomes = []
        stream = client.open_sharded_scan_stream(step, virtual, outcomes)
        first_page = stream.next_page()
        assert first_page
        stream.close()
    finally:
        client.close()
    assert 1 <= len(outcomes) < len(step.shards)
    assert meter.snapshot().pages_skipped > 0
    shard = step.shards[0]
    fragment = tier.shard_fragment(
        scope,
        step.table_name,
        step.scan.pushdown_sql,
        shard.index,
        len(step.shards),
        shard.start,
    )
    assert fragment is not None and fragment.complete

    # A full sharded scan over the same tier reuses the finished shard.
    meter2 = UsageMeter()
    client2 = ModelClient(model, meter2, config, storage=tier)
    try:
        table = client2.run_sharded_scan(step, virtual)
    finally:
        client2.close()
    assert len(table) == 240
    assert meter2.snapshot().pages_fetched < 12  # shard 0's pages were free


# ---------------------------------------------------------------------------
# RowStream unit behavior
# ---------------------------------------------------------------------------


def test_materialized_stream_chunks_rows():
    rows = [[i] for i in range(7)]
    stream = materialized_stream(("n",), rows, page_size=3)
    pages = list(stream)
    assert [len(page) for page in pages] == [3, 3, 1]
    assert stream.rows_yielded == 7
    assert stream.pages_yielded == 3
    assert stream.exhausted
    assert stream.next_page() is None
    stream.close()  # idempotent after exhaustion


def test_row_stream_close_stops_generator():
    cleaned = []

    def pages():
        try:
            yield [[1]]
            yield [[2]]
        except GeneratorExit:
            cleaned.append("closed")

    stream = RowStream(("n",), pages())
    assert stream.next_page() == [[1]]
    stream.close()
    assert cleaned == ["closed"]
    assert stream.next_page() is None


def test_take_until_stops_at_quota():
    seen = []

    def pages():
        for i in range(10):
            seen.append(i)
            yield [[i]]

    stream = RowStream(("n",), pages())
    rows = take_until(stream, RowQuota(3, probe=len))
    assert rows == [[0], [1], [2]]
    assert seen == [0, 1, 2]  # later pages never produced


def test_take_until_without_quota_drains():
    stream = materialized_stream(("n",), [[1], [2], [3]], page_size=2)
    assert take_until(stream, None) == [[1], [2], [3]]


def test_row_quota_rejects_nonpositive():
    with pytest.raises(ValueError):
        RowQuota(0, probe=len)
