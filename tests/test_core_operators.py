"""Unit tests for the ModelClient retrieval operators."""

import pytest

from repro.config import EngineConfig
from repro.core.operators import ModelClient, build_local_table, normalize_key
from repro.core.virtual import VirtualTable
from repro.errors import ExecutionError
from repro.llm.accounting import UsageMeter
from repro.llm.interface import Completion, CompletionOptions
from repro.plan.cost import CostEstimate
from repro.plan.physical import JudgeStep, LookupStep, ScanStep
from tests.conftest import make_country_schema

SCHEMA = make_country_schema()


def make_client(model, config=EngineConfig()):
    return ModelClient(model=model, meter=UsageMeter(), config=config)


def make_scan(**overrides):
    base = dict(
        binding="countries",
        table_name="countries",
        schema=SCHEMA,
        columns=("name", "population"),
        est_rows=10.0,
        estimate=CostEstimate(calls=1),
    )
    base.update(overrides)
    return ScanStep(**base)


def virtual():
    return VirtualTable.build(SCHEMA, row_estimate=10)


def test_scan_collects_paginated_rows(perfect_model):
    client = make_client(perfect_model, EngineConfig().with_(page_size=3))
    table = client.run_scan(make_scan(), virtual())
    assert len(table) == 10
    assert table.schema.column_names == ["name", "population"]


def test_scan_with_condition(perfect_model):
    client = make_client(perfect_model)
    step = make_scan(pushdown_sql="continent = 'Asia'")
    table = client.run_scan(step, virtual())
    assert sorted(row[0] for row in table.rows) == ["India", "Japan"]


def test_scan_limit_hint_stops_early(perfect_model):
    client = make_client(perfect_model, EngineConfig().with_(page_size=3))
    step = make_scan(limit_hint=4, order=("population", True))
    table = client.run_scan(step, virtual())
    assert len(table) == 4
    assert table.rows[0][0] == "India"


def test_scan_guard_aborts_runaway(mini_world):
    class EndlessModel:
        """Claims MORE forever."""

        def complete(self, prompt, options=CompletionOptions()):
            return Completion(
                text="France | 1\nMORE", prompt_tokens=5, completion_tokens=5
            )

    client = make_client(EndlessModel(), EngineConfig().with_(scan_guard_factor=2))
    table = client.run_scan(make_scan(est_rows=5.0), virtual())
    assert any("guard" in w for w in client.warnings)
    assert len(table) > 0


def test_lookup_returns_found_keys_only(perfect_model):
    client = make_client(perfect_model)
    step = LookupStep(
        binding="k", table_name="countries", schema=SCHEMA,
        key_columns=("name",), attributes=("population",),
        est_keys=2, estimate=CostEstimate(calls=1),
    )
    table = client.run_lookup(step, [("France",), ("Atlantis",)], virtual())
    assert table.rows == [("France", 68000)]


def test_lookup_batches(perfect_model):
    meter = UsageMeter()
    client = ModelClient(
        model=perfect_model, meter=meter,
        config=EngineConfig().with_(lookup_batch_size=2, enable_cache=False),
    )
    step = LookupStep(
        binding="k", table_name="countries", schema=SCHEMA,
        key_columns=("name",), attributes=("population",),
        est_keys=5, estimate=CostEstimate(),
    )
    keys = [(name,) for name in ["France", "Germany", "Italy", "Japan", "Kenya"]]
    table = client.run_lookup(step, keys, virtual())
    assert len(table) == 5
    assert meter.calls == 3  # ceil(5/2)


def test_judge_returns_verdicts(perfect_model):
    client = make_client(perfect_model)
    step = JudgeStep(
        binding="countries", table_name="countries", schema=SCHEMA,
        key_columns=("name",), condition_sql="population > 100000",
        est_keys=2, estimate=CostEstimate(),
    )
    verdicts = client.run_judge(step, [("Japan",), ("Iceland",)])
    assert verdicts[normalize_key(("Japan",))] is True
    assert verdicts[normalize_key(("Iceland",))] is False


def test_retry_gives_up_after_max_retries():
    class RefusingModel:
        def complete(self, prompt, options=CompletionOptions()):
            return Completion(
                text="I'm sorry, I cannot.", prompt_tokens=3, completion_tokens=3
            )

    client = make_client(RefusingModel(), EngineConfig().with_(max_retries=1))
    with pytest.raises(ExecutionError):
        client.run_scan(make_scan(), virtual())


def test_build_local_table_drops_unfixable_rows():
    table = build_local_table(
        "b", SCHEMA, ("name", "population"),
        [["France", 1], ["Spain", "not-a-number"], ["Italy", None]],
    )
    assert len(table) == 2  # the Spain row cannot be coerced


def test_normalize_key_semantics():
    assert normalize_key(("France",)) == normalize_key((" france ",))
    assert normalize_key((1,)) == normalize_key((1.0,))
    assert normalize_key((True,)) != normalize_key((1,))
    assert normalize_key((None,)) == normalize_key((None,))
