"""Tests for the adaptive materialization storage tier.

Covers the LRU/TTL/byte-budget substrate, fragment payload semantics,
normalized result-cache keys, and the engine-level guarantees: byte
identity with the storage-off engine, call savings, eviction and
expiry edges, and the nondeterminism gate (``votes > 1`` /
``temperature > 0`` results are never served).
"""

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.sql.parser import parse
from repro.storage.fragments import RowCells, ScanFragment
from repro.storage.normalize import canonical_sql_key
from repro.storage.store import LRUByteStore, approx_bytes
from repro.storage.tier import StorageTier
from tests.conftest import make_engine


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# LRUByteStore
# ---------------------------------------------------------------------------


def test_store_ttl_expiry():
    clock = FakeClock()
    store = LRUByteStore(budget_bytes=10_000, ttl_s=10.0, clock=clock)
    store.put("a", "payload")
    assert store.get("a") == "payload"
    clock.advance(9.0)
    assert store.get("a") == "payload"
    clock.advance(1.5)
    assert store.get("a") is None
    assert store.stats.expirations == 1
    assert len(store) == 0


def test_store_budget_forces_lru_eviction():
    store = LRUByteStore(budget_bytes=300)
    store.put("a", "x", size=100)
    store.put("b", "y", size=100)
    store.put("c", "z", size=100)
    assert store.get("a") == "x"  # bump "a" to most-recent
    store.put("d", "w", size=100)  # evicts "b", the least recent
    assert store.get("b") is None
    assert store.get("a") == "x"
    assert store.get("c") == "z"
    assert store.stats.evictions == 1


def test_store_oversized_entry_is_admitted_alone():
    store = LRUByteStore(budget_bytes=100)
    store.put("small", "s", size=40)
    store.put("big", "B", size=500)
    assert store.get("big") == "B"
    assert store.get("small") is None


def test_store_oversized_admission_is_counted_and_evictable():
    store = LRUByteStore(budget_bytes=100)
    store.put("big", "B", size=500)
    # Documented policy: admitted alone, resident above budget, counted.
    assert store.stats.oversized == 1
    assert store.bytes_used == 500
    # The next insert evicts it like any other LRU entry — over-budget
    # residency is transient, not permanent.
    store.put("after", "a", size=40)
    assert store.get("big") is None
    assert store.bytes_used == 40
    assert store.stats.evictions == 1
    store.put("fits", "f", size=60)
    assert store.stats.oversized == 1  # in-budget entries never count


def test_store_peek_is_strictly_read_only():
    clock = FakeClock()
    store = LRUByteStore(budget_bytes=10_000, ttl_s=10.0, clock=clock)
    store.put("a", "payload")
    clock.advance(11.0)
    # Regression: peek used to delete the expired entry and count an
    # expiration — a planner probe was mutating the store.
    assert store.peek("a") is None
    assert store.stats.expirations == 0
    assert store.stats.hits == 0
    assert store.stats.misses == 0
    assert len(store) == 1
    assert store.bytes_used > 0
    # The next mutating access settles it exactly once.
    assert store.get("a") is None
    assert store.stats.expirations == 1
    assert len(store) == 0


def test_store_peek_does_not_refresh_recency():
    store = LRUByteStore(budget_bytes=300)
    store.put("a", "x", size=100)
    store.put("b", "y", size=100)
    store.put("c", "z", size=100)
    assert store.peek("a") == "x"  # must NOT bump "a"
    store.put("d", "w", size=100)  # evicts "a", still least-recent
    assert store.peek("a") is None
    assert store.peek("b") == "y"


def test_store_replacing_expired_entry_counts_expiration():
    clock = FakeClock()
    store = LRUByteStore(budget_bytes=10_000, ttl_s=10.0, clock=clock)
    store.put("a", "old")
    clock.advance(11.0)
    # Regression: replacing a dead entry counted only `stored`; the old
    # payload's death by age went unrecorded.
    store.put("a", "new")
    assert store.stats.expirations == 1
    assert store.stats.stored == 2
    assert store.get("a") == "new"


def test_store_replacing_live_entry_counts_no_expiration():
    clock = FakeClock()
    store = LRUByteStore(budget_bytes=10_000, ttl_s=10.0, clock=clock)
    store.put("a", "old")
    clock.advance(5.0)
    store.put("a", "new")
    assert store.stats.expirations == 0


def test_store_replace_adjusts_bytes():
    store = LRUByteStore(budget_bytes=1000)
    store.put("a", "x", size=100)
    store.put("a", "y", size=300)
    assert store.bytes_used == 300
    store.remove("a")
    assert store.bytes_used == 0


def test_approx_bytes_is_deterministic_and_monotone():
    assert approx_bytes("abc") == approx_bytes("abc")
    assert approx_bytes("abcdef") > approx_bytes("abc")
    assert approx_bytes(("a", 1, None)) > 0


# ---------------------------------------------------------------------------
# Fragment payloads
# ---------------------------------------------------------------------------


def make_fragment():
    return ScanFragment(
        columns=("name", "population"),
        rows=(("France", 68000), ("Norway", 5400)),
        complete=True,
        source_calls=2,
    )


def test_scan_fragment_projection_and_missing():
    fragment = make_fragment()
    assert fragment.covers_columns(["population"])
    assert fragment.missing_columns(["name", "gdp"]) == ["gdp"]
    assert fragment.project(["population", "name"]) == [
        [68000, "France"],
        [5400, "Norway"],
    ]
    assert fragment.project(["name"], limit=1) == [["France"]]


def test_scan_fragment_widen_and_merge():
    fragment = make_fragment()
    widened = fragment.widened(["gdp"], [[2780.0], [482.0]])
    assert widened.columns == ("name", "population", "gdp")
    assert widened.rows[1] == ("Norway", 5400, 482.0)

    other = ScanFragment(
        columns=("name", "gdp"),
        rows=(("France", 2780.0), ("Norway", 482.0)),
        complete=True,
        source_calls=1,
    )
    merged = fragment.merged_with(other)
    assert merged.columns == ("name", "population", "gdp")
    assert merged.rows[0] == ("France", 68000, 2780.0)

    truncated = ScanFragment(
        columns=("name",), rows=(("France",),), complete=False
    )
    assert fragment.merged_with(truncated) is None


def test_row_cells_positive_and_negative_knowledge():
    cells = RowCells().with_values(["population"], [68000])
    assert cells.covers(["population"])
    assert not cells.covers(["gdp"])
    assert cells.values_for(["population"]) == [68000]

    negative = RowCells().with_negative(["population", "gdp"])
    assert negative.is_negative_for(["population"])
    assert negative.is_negative_for(["gdp", "population"])
    assert not negative.is_negative_for(["name", "area"])
    # A later positive answer clears overlapping negative knowledge.
    recovered = negative.with_values(["population"], [68000])
    assert not recovered.is_negative_for(["population"])


# ---------------------------------------------------------------------------
# Normalized cache keys
# ---------------------------------------------------------------------------


def normalized(sql: str) -> str:
    return canonical_sql_key(parse(sql))


def test_canonical_key_collapses_formatting_and_aliases():
    base = normalized(
        "SELECT c.name FROM countries AS c WHERE c.continent = 'Europe'"
    )
    assert base == normalized(
        "select x.name   from countries x where x.continent = 'Europe'"
    )
    assert base == normalized(
        "SELECT Countries.name FROM Countries WHERE countries.continent = 'Europe'"
    )


def test_canonical_key_preserves_literal_case():
    assert normalized(
        "SELECT name FROM countries WHERE continent = 'Europe'"
    ) != normalized("SELECT name FROM countries WHERE continent = 'europe'")


def test_canonical_key_distinguishes_joins_by_structure():
    a = normalized(
        "SELECT a.city FROM cities a JOIN countries b ON a.country = b.name"
    )
    b = normalized(
        "SELECT x.city FROM cities x JOIN countries y ON x.country = y.name"
    )
    assert a == b


def test_canonical_key_separates_correlated_from_uncorrelated():
    # Canonical names are unique across scopes and outer refs resolve
    # through the inherited environment, so an outer alias spelled like
    # an inner canonical name ("t1") cannot collide.
    uncorrelated = normalized(
        "SELECT name FROM countries t1 WHERE EXISTS "
        "(SELECT name FROM countries c WHERE c.continent = c.name)"
    )
    correlated = normalized(
        "SELECT name FROM countries t1 WHERE EXISTS "
        "(SELECT name FROM countries c WHERE c.continent = t1.name)"
    )
    assert uncorrelated != correlated


def test_correlated_query_never_served_from_result_cache(
    perfect_model, mini_world
):
    import pytest as _pytest

    from repro.errors import PlanError

    engine = storage_engine(perfect_model, mini_world, "result_cache")
    engine.execute(
        "SELECT name FROM countries t1 WHERE EXISTS "
        "(SELECT name FROM countries c WHERE c.continent = c.name)"
    )
    # The correlated twin must reach the planner and be rejected there,
    # not be served the uncorrelated query's cached rows.
    with _pytest.raises(PlanError):
        engine.execute(
            "SELECT name FROM countries t1 WHERE EXISTS "
            "(SELECT name FROM countries c WHERE c.continent = t1.name)"
        )


# ---------------------------------------------------------------------------
# Engine integration helpers
# ---------------------------------------------------------------------------


QUERIES = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT COUNT(*) FROM countries WHERE continent = 'Asia'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 3",
]


def storage_engine(perfect_model, mini_world, mode, **config_kwargs):
    config = EngineConfig(storage_mode=mode, **config_kwargs)
    return make_engine(perfect_model, mini_world, config)


def rows_of(result):
    return [tuple(row) for row in result.rows]


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def test_result_cache_serves_repeated_query(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "result_cache")
    sql = QUERIES[0]
    first = engine.execute(sql)
    assert first.usage.calls > 0
    second = engine.execute(sql)
    assert second.usage.calls == 0
    assert second.usage.result_cache_hits == 1
    assert second.usage.calls_saved == first.usage.calls
    assert rows_of(second) == rows_of(first)
    assert second.explain_text == first.explain_text
    assert second.warnings == first.warnings


def test_result_cache_hits_on_formatting_and_alias_variants(
    perfect_model, mini_world
):
    engine = storage_engine(perfect_model, mini_world, "result_cache")
    engine.execute("SELECT name FROM countries WHERE continent = 'Europe'")
    variants = [
        "select name from countries where continent = 'Europe'",
        "SELECT   name FROM countries WHERE continent='Europe'",
        "SELECT c.name FROM countries AS c WHERE c.continent = 'Europe'",
        "SELECT x.name FROM countries x WHERE x.continent = 'Europe'",
    ]
    for sql in variants:
        result = engine.execute(sql)
        assert result.usage.calls == 0, sql
        assert result.usage.result_cache_hits == 1, sql


def test_result_cache_misses_on_different_literals(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "result_cache")
    engine.execute("SELECT name FROM countries WHERE continent = 'Europe'")
    other = engine.execute(
        "SELECT name FROM countries WHERE continent = 'Asia'"
    )
    assert other.usage.result_cache_hits == 0
    assert other.usage.calls > 0


# ---------------------------------------------------------------------------
# Fragment materialization
# ---------------------------------------------------------------------------


def test_fragment_serves_projection_subset(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    engine.execute(QUERIES[0])  # fetches name, continent, population
    result = engine.execute(QUERIES[1])  # needs a subset of the columns
    assert result.usage.calls == 0
    assert result.usage.fragment_hits >= 1
    assert result.usage.calls_saved >= 1


def test_fragment_residual_fetches_only_missing_columns(
    perfect_model, mini_world
):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    narrow = engine.execute(
        "SELECT name FROM countries WHERE continent = 'Europe'"
    )
    assert narrow.usage.calls > 0
    wide = engine.execute(
        "SELECT name, population FROM countries WHERE continent = 'Europe'"
    )
    # The enumeration is reused; only the missing column is looked up.
    assert wide.usage.fragment_hits >= 1
    assert 0 < wide.usage.calls < narrow.usage.calls + 1
    # And the widened fragment now serves the wide scan outright.
    replay = engine.execute(
        "SELECT population, name FROM countries WHERE continent = 'Europe'"
    )
    assert replay.usage.calls == 0


def test_fragment_serves_limit_prefix(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    engine.execute(
        "SELECT name FROM countries WHERE continent = 'Europe' "
        "ORDER BY population DESC LIMIT 4"
    )
    smaller = engine.execute(
        "SELECT name FROM countries WHERE continent = 'Europe' "
        "ORDER BY population DESC LIMIT 2"
    )
    assert smaller.usage.calls == 0
    assert smaller.usage.fragment_hits >= 1


def test_lookup_cells_reused_across_queries(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    first = engine.execute(
        "SELECT population, gdp FROM countries WHERE name = 'France'"
    )
    assert first.usage.calls > 0
    second = engine.execute(
        "SELECT population FROM countries WHERE name = 'France'"
    )
    assert second.usage.calls == 0
    assert second.usage.fragment_hits >= 1
    assert rows_of(second) == [(68000,)]


def test_negative_lookup_knowledge_is_cached(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    first = engine.execute(
        "SELECT population FROM countries WHERE name = 'Atlantis'"
    )
    assert len(first.rows) == 0
    assert first.usage.calls > 0
    second = engine.execute(
        "SELECT name, population FROM countries WHERE name = 'Atlantis'"
    )
    assert len(second.rows) == 0
    assert second.usage.calls == 0


def test_explain_reports_fragment_coverage(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    sql = QUERIES[0]
    cold = engine.explain(sql)
    assert "fragment[" not in cold
    engine.execute(sql)
    warm = engine.explain(sql)
    assert "fragment[" in warm
    assert "served from storage" in warm


# ---------------------------------------------------------------------------
# Byte identity with the storage-off engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["result_cache", "materialize"])
def test_results_byte_identical_to_storage_off(
    mini_world, perfect_model, mode
):
    from repro.llm.noise import NoiseConfig
    from repro.llm.simulated import SimulatedLLM

    def run(storage_mode):
        model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
        engine = make_engine(
            model, mini_world, EngineConfig(storage_mode=storage_mode)
        )
        # Each query twice: cold and warm paths must both match.
        return [rows_of(engine.execute(sql)) for sql in QUERIES + QUERIES]

    assert run(mode) == run("off")


def test_storage_with_concurrency_keeps_results(mini_world):
    from repro.llm.noise import NoiseConfig
    from repro.llm.simulated import SimulatedLLM

    def run(max_in_flight):
        model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
        engine = make_engine(
            model,
            mini_world,
            EngineConfig(storage_mode="materialize", max_in_flight=max_in_flight),
        )
        return [rows_of(engine.execute(sql)) for sql in QUERIES + QUERIES]

    assert run(4) == run(1)


# ---------------------------------------------------------------------------
# Nondeterminism gate
# ---------------------------------------------------------------------------


def test_voting_results_never_served_from_cache(perfect_model, mini_world):
    engine = storage_engine(
        perfect_model, mini_world, "materialize", votes=3, temperature=0.7
    )
    sql = "SELECT population FROM countries WHERE name = 'France'"
    first = engine.execute(sql)
    second = engine.execute(sql)
    assert first.usage.calls > 0
    assert second.usage.calls == first.usage.calls
    assert second.usage.result_cache_hits == 0
    assert second.usage.fragment_hits == 0


def test_temperature_results_never_served_from_cache(
    perfect_model, mini_world
):
    engine = storage_engine(
        perfect_model, mini_world, "result_cache", temperature=0.5
    )
    sql = QUERIES[0]
    engine.execute(sql)
    second = engine.execute(sql)
    assert second.usage.calls > 0
    assert second.usage.result_cache_hits == 0


# ---------------------------------------------------------------------------
# Eviction / expiry / invalidation edges
# ---------------------------------------------------------------------------


def test_ttl_expiry_forces_refetch(perfect_model, mini_world):
    clock = FakeClock()
    tier = StorageTier(mode="materialize", ttl_s=60.0, clock=clock)
    engine = make_engine_with_tier(perfect_model, mini_world, tier)
    sql = QUERIES[0]
    first = engine.execute(sql)
    clock.advance(30.0)
    warm = engine.execute(sql)
    assert warm.usage.calls == 0
    clock.advance(61.0)
    expired = engine.execute(sql)
    assert expired.usage.calls == first.usage.calls
    assert rows_of(expired) == rows_of(first)
    assert tier.snapshot().expirations >= 1


def test_budget_forces_fragment_eviction(perfect_model, mini_world):
    tier = StorageTier(mode="materialize", budget_bytes=400)
    engine = make_engine_with_tier(perfect_model, mini_world, tier)
    first = engine.execute(QUERIES[0])
    assert first.usage.calls > 0
    # A second, different scan overflows the tiny budget and evicts the
    # first fragment; refetching it pays model calls again but stays
    # correct.
    engine.execute("SELECT city, city_pop FROM cities WHERE is_capital = TRUE")
    refetched = engine.execute(
        "SELECT name, population FROM countries WHERE continent = 'Europe' "
        "AND population > 0"
    )
    assert tier.snapshot().evictions >= 1
    assert refetched.usage.calls > 0
    assert rows_of(refetched) == rows_of(first)


def test_registration_invalidates_storage(
    perfect_model, mini_world, country_table
):
    from repro.relational.schema import TableSchema

    engine = storage_engine(perfect_model, mini_world, "materialize")
    sql = QUERIES[0]
    engine.execute(sql)
    assert engine.execute(sql).usage.calls == 0
    # Registering a new table drops all materialized state.
    renamed = TableSchema(
        name="local_countries",
        columns=country_table.schema.columns,
        primary_key=country_table.schema.primary_key,
    )
    from repro.relational.table import Table

    engine.register_materialized_table(Table(renamed, country_table.rows))
    assert engine.execute(sql).usage.calls > 0


def test_clear_cache_drops_materialized_state(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    sql = QUERIES[0]
    first = engine.execute(sql)
    assert engine.execute(sql).usage.calls == 0
    engine.clear_cache()
    refetched = engine.execute(sql)
    assert refetched.usage.calls == first.usage.calls


def make_engine_with_tier(model, world, tier, config=None):
    engine = LLMStorageEngine(
        model,
        config=config or EngineConfig(storage_mode=tier.mode),
        storage=tier,
    )
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def test_store_keeps_longer_incomplete_prefix():
    tier = StorageTier(mode="materialize")
    scope = ("m", ())
    longer = ScanFragment(
        columns=("population",),
        rows=tuple((i,) for i in range(50)),
        complete=False,
        source_calls=3,
    )
    tier.store_scan_fragment(scope, "t", None, None, longer)
    shorter = ScanFragment(
        columns=("gdp",),
        rows=tuple((i,) for i in range(10)),
        complete=False,
        source_calls=1,
    )
    tier.store_scan_fragment(scope, "t", None, None, shorter)
    kept = tier.scan_fragment(scope, "t", None, None)
    assert kept.columns == ("population",)
    assert len(kept.rows) == 50


def test_pinned_fragment_serves_after_expiry(perfect_model, mini_world):
    from repro.core.operators import ModelClient

    clock = FakeClock()
    tier = StorageTier(mode="materialize", ttl_s=60.0, clock=clock)
    engine = make_engine_with_tier(perfect_model, mini_world, tier)
    sql = QUERIES[0]
    warmed = engine.execute(sql)
    plan = engine.plan(sql)  # warm plan: routed to storage, fragment pinned
    scan = plan.steps[0]
    assert scan.fragment_covered
    assert scan.pinned_fragment is not None
    clock.advance(120.0)  # the tier entry expires after planning...
    client = ModelClient(
        model=perfect_model,
        meter=engine._session.meter,
        config=engine.config,
        cache=engine._session.cache,
        storage=tier,
    )
    try:
        # ...but the pinned snapshot still serves the routed scan.
        table = client._scan_from_storage(scan, engine._virtuals["countries"])
    finally:
        client.close()
    assert table is not None
    assert len(table.rows) >= len(warmed.rows)
    assert [c.lower() for c in table.schema.column_names] == [
        c.lower() for c in scan.columns
    ]


def test_shared_tier_partitions_fragments_by_config(perfect_model, mini_world):
    tier = StorageTier(mode="materialize")
    base = EngineConfig(storage_mode="materialize")
    first = make_engine_with_tier(perfect_model, mini_world, tier, config=base)
    second = make_engine_with_tier(
        perfect_model,
        mini_world,
        tier,
        config=base.with_(page_size=7),  # retrieves differently
    )
    sql = QUERIES[0]
    warmed = first.execute(sql)
    assert warmed.usage.calls > 0
    # A different semantic config must not be served the first
    # config's fragments or results.
    cold = second.execute(sql)
    assert cold.usage.calls > 0
    assert cold.usage.result_cache_hits == 0
    assert cold.usage.fragment_hits == 0


# ---------------------------------------------------------------------------
# Visibility
# ---------------------------------------------------------------------------


def test_usage_render_surfaces_storage_counters(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    sql = QUERIES[0]
    engine.execute(sql)
    second = engine.execute(sql)
    text = second.usage.render()
    assert "storage:" in text
    assert "result hit(s)" in text
    rendered = second.render()
    assert "storage:" in rendered


def test_session_usage_accumulates_storage_counters(
    perfect_model, mini_world
):
    engine = storage_engine(perfect_model, mini_world, "materialize")
    engine.execute(QUERIES[0])
    engine.execute(QUERIES[0])
    engine.execute(QUERIES[1])
    usage = engine.usage
    assert usage.result_cache_hits >= 1
    assert usage.fragment_hits >= 1
    assert usage.calls_saved >= 1
    engine.reset_usage()
    assert engine.usage.result_cache_hits == 0


def test_shared_tier_partitions_fragments_by_model(mini_world):
    from repro.llm.noise import NoiseConfig
    from repro.llm.simulated import SimulatedLLM

    class RenamedModel:
        """Same world, different identity: answers must not be shared."""

        def __init__(self, inner, name):
            self._inner = inner
            self.model_name = name

        def complete(self, prompt, options=None):
            return self._inner.complete(prompt, options)

    tier = StorageTier(mode="materialize")
    sql = QUERIES[0]
    # Build both engines first: registering tables clears the shared tier.
    first = make_engine_with_tier(
        RenamedModel(SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5), "m1"),
        mini_world,
        tier,
    )
    second = make_engine_with_tier(
        RenamedModel(SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5), "m2"),
        mini_world,
        tier,
    )
    warmed = first.execute(sql)
    assert warmed.usage.calls > 0
    assert first.execute(sql).usage.calls == 0  # same model: served

    # A different model identity must repay its own calls, never be
    # served another model's fragments or results.
    cold = second.execute(sql)
    assert cold.usage.calls == warmed.usage.calls
    assert cold.usage.result_cache_hits == 0
    assert cold.usage.fragment_hits == 0


def test_simulated_llm_identity_distinguishes_seeds_and_worlds(mini_world):
    from repro.llm.noise import NoiseConfig
    from repro.llm.simulated import SimulatedLLM

    # Default model names must differ when answers can differ, so a
    # shared tier (or prompt cache) never crosses configurations.
    a = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    b = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=6)
    c = SimulatedLLM(mini_world, NoiseConfig(), seed=5)
    assert len({a.model_name, b.model_name, c.model_name}) == 3
    tier = StorageTier(mode="materialize")
    first = make_engine_with_tier(a, mini_world, tier)
    second = make_engine_with_tier(b, mini_world, tier)
    sql = QUERIES[0]
    warmed = first.execute(sql)
    cold = second.execute(sql)  # different seed: must repay its calls
    assert cold.usage.calls == warmed.usage.calls
    assert cold.usage.fragment_hits == 0


def test_shared_tier_never_overrides_storage_off_config(
    perfect_model, mini_world
):
    tier = StorageTier(mode="materialize")
    config = EngineConfig()  # storage_mode="off"
    engine = make_engine_with_tier(perfect_model, mini_world, tier, config=config)
    sql = QUERIES[0]
    first = engine.execute(sql)
    second = engine.execute(sql)
    # The injected tier must not enable storage behind an off config:
    # nothing is served, nothing is written.
    assert second.usage.calls == first.usage.calls > 0
    assert second.usage.result_cache_hits == 0
    assert second.usage.fragment_hits == 0
    assert tier.bytes_used == 0


def test_off_mode_reports_zero_storage_counters(perfect_model, mini_world):
    engine = storage_engine(perfect_model, mini_world, "off")
    engine.execute(QUERIES[0])
    second = engine.execute(QUERIES[0])
    assert second.usage.result_cache_hits == 0
    assert second.usage.fragment_hits == 0
    assert second.usage.calls_saved == 0
    assert second.usage.calls > 0
