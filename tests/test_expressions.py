"""Expression evaluator tests: three-valued logic, operators, functions."""

import pytest

from repro.errors import ExecutionError
from repro.relational.expressions import (
    EMPTY_SCOPE,
    Evaluator,
    RowScope,
    compare_values,
    evaluate_constant,
    is_true,
    like_to_regex,
)
from repro.sql.parser import parse_expression


def evaluate(source, bindings=None):
    scope = RowScope(bindings or {}) if bindings is not None else EMPTY_SCOPE
    return Evaluator().evaluate(parse_expression(source), scope)


# -- literals and arithmetic ---------------------------------------------------


@pytest.mark.parametrize(
    "source,expected",
    [
        ("1 + 2", 3),
        ("7 - 10", -3),
        ("3 * 4", 12),
        ("7 / 2", 3.5),
        ("7 % 3", 1),
        ("2.5 + 1", 3.5),
        ("-(3 + 4)", -7),
        ("1 / 0", None),
        ("5 % 0", None),
        ("'a' || 'b'", "ab"),
        ("'v' || 1", "v1"),
    ],
)
def test_arithmetic(source, expected):
    assert evaluate(source) == expected


def test_arithmetic_null_propagation():
    assert evaluate("1 + NULL") is None
    assert evaluate("NULL * 3") is None
    assert evaluate("'a' || NULL") is None


def test_arithmetic_type_error():
    with pytest.raises(ExecutionError):
        evaluate("'a' + 1")


# -- comparisons and 3VL ---------------------------------------------------------


@pytest.mark.parametrize(
    "source,expected",
    [
        ("1 = 1", True),
        ("1 = 2", False),
        ("1 <> 2", True),
        ("2 < 10", True),
        ("'abc' < 'abd'", True),
        ("1 = 1.0", True),
        ("NULL = NULL", None),
        ("1 = NULL", None),
        ("NULL <> 1", None),
    ],
)
def test_comparisons(source, expected):
    assert evaluate(source) == expected


def test_mixed_type_comparison_raises():
    with pytest.raises(ExecutionError):
        evaluate("'a' = 1")


def test_and_or_three_valued_logic():
    assert evaluate("TRUE AND NULL") is None
    assert evaluate("FALSE AND NULL") is False
    assert evaluate("TRUE OR NULL") is True
    assert evaluate("FALSE OR NULL") is None
    assert evaluate("NOT NULL") is None
    assert evaluate("NOT FALSE") is True


def test_and_short_circuit_does_not_mask_false():
    # FALSE AND <error-free NULL> must be FALSE, not NULL.
    assert evaluate("1 = 2 AND NULL") is False


def test_is_true_semantics():
    assert is_true(True)
    assert not is_true(False)
    assert not is_true(None)
    assert is_true(1)
    assert not is_true(0)


def test_compare_values_none():
    assert compare_values(None, 1) is None
    assert compare_values(2, 2) == 0
    assert compare_values(1, 2) == -1


# -- predicates -----------------------------------------------------------------


def test_between_including_bounds():
    assert evaluate("5 BETWEEN 1 AND 5") is True
    assert evaluate("0 BETWEEN 1 AND 5") is False
    assert evaluate("NULL BETWEEN 1 AND 5") is None
    assert evaluate("3 NOT BETWEEN 1 AND 5") is False


def test_in_list_null_semantics():
    assert evaluate("1 IN (1, 2)") is True
    assert evaluate("3 IN (1, 2)") is False
    assert evaluate("3 IN (1, NULL)") is None
    assert evaluate("1 IN (1, NULL)") is True
    assert evaluate("NULL IN (1)") is None
    assert evaluate("3 NOT IN (1, NULL)") is None
    assert evaluate("1 NOT IN (1, 2)") is False


def test_is_null():
    assert evaluate("NULL IS NULL") is True
    assert evaluate("1 IS NULL") is False
    assert evaluate("1 IS NOT NULL") is True


@pytest.mark.parametrize(
    "value,pattern,expected",
    [
        ("hello", "hello", True),
        ("hello", "h%", True),
        ("hello", "%o", True),
        ("hello", "h_llo", True),
        ("hello", "H%", False),
        ("h.llo", "h.llo", True),
        ("hxllo", "h.llo", False),
        ("", "%", True),
    ],
)
def test_like(value, pattern, expected):
    assert evaluate(f"'{value}' LIKE '{pattern}'") is expected


def test_like_null_and_type():
    assert evaluate("NULL LIKE 'a%'") is None
    with pytest.raises(ExecutionError):
        evaluate("1 LIKE 'a%'")


def test_like_regex_escapes_specials():
    assert like_to_regex("a+b").match("a+b")
    assert not like_to_regex("a+b").match("aab")


# -- CASE -------------------------------------------------------------------------


def test_case_searched_first_match_wins():
    assert evaluate("CASE WHEN 1 = 1 THEN 'a' WHEN 1 = 1 THEN 'b' END") == "a"


def test_case_no_match_returns_else_or_null():
    assert evaluate("CASE WHEN 1 = 2 THEN 'a' END") is None
    assert evaluate("CASE WHEN 1 = 2 THEN 'a' ELSE 'b' END") == "b"


def test_case_simple_form_null_subject_never_matches():
    assert evaluate("CASE NULL WHEN 1 THEN 'a' ELSE 'b' END") == "b"


# -- columns and scopes -----------------------------------------------------------


def test_column_resolution_qualified_and_bare():
    bindings = {"t": {"x": 10, "y": 2}}
    assert evaluate("x + t.y", bindings) == 12


def test_ambiguous_column_raises():
    bindings = {"a": {"x": 1}, "b": {"x": 2}}
    with pytest.raises(ExecutionError):
        evaluate("x", bindings)


def test_unknown_column_raises():
    with pytest.raises(ExecutionError):
        evaluate("missing", {"t": {"x": 1}})


def test_parent_scope_resolution():
    outer = RowScope({"o": {"k": 7}})
    inner = RowScope({"i": {"x": 1}}, parent=outer)
    value = Evaluator().evaluate(parse_expression("x + o.k"), inner)
    assert value == 8


def test_cast_in_expression():
    assert evaluate("CAST('12' AS INTEGER) + 1") == 13
    assert evaluate("CAST('oops' AS INTEGER)") is None
    assert evaluate("CAST(1 AS BOOLEAN)") is True


def test_scalar_function_through_evaluator():
    assert evaluate("UPPER('ab') || LOWER('CD')") == "ABcd"
    assert evaluate("COALESCE(NULL, NULL, 3)") == 3
    assert evaluate("NULLIF(2, 2)") is None
    assert evaluate("LENGTH('hello')") == 5


def test_aggregate_outside_grouping_raises():
    with pytest.raises(ExecutionError):
        evaluate("COUNT(*)")


def test_subquery_without_executor_raises():
    with pytest.raises(ExecutionError):
        evaluate("EXISTS (SELECT 1)")


def test_evaluate_constant_helper():
    assert evaluate_constant(parse_expression("2 * 21")) == 42
