"""Printer tests: canonical rendering plus parse/print round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast
from repro.sql.parser import parse, parse_expression
from repro.sql.printer import format_identifier, format_literal, to_sql

ROUND_TRIP_STATEMENTS = [
    "SELECT 1",
    "SELECT DISTINCT a, b AS c FROM t",
    "SELECT * FROM t WHERE a = 1 AND b <> 'x'",
    "SELECT t.* FROM t",
    "SELECT a FROM t AS u WHERE u.a > 3.5",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR b NOT IN (1, 2)",
    "SELECT a FROM t WHERE name LIKE 'A%' AND note IS NOT NULL",
    "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1",
    "SELECT a FROM t ORDER BY a DESC NULLS LAST LIMIT 3 OFFSET 1",
    "SELECT a FROM t JOIN u ON u.x = t.x LEFT JOIN v ON v.y = u.y",
    "SELECT a FROM t CROSS JOIN u",
    "SELECT a FROM (SELECT b AS a FROM u) AS d",
    "SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t",
    "SELECT CAST(a AS REAL) FROM t",
    "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = 1)",
    "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 5",
    "SELECT a FROM t UNION SELECT b FROM u EXCEPT SELECT c FROM v",
    "SELECT -x, +3 FROM t",
    "SELECT a || '-' || b FROM t",
    "SELECT COUNT(DISTINCT a) FROM t",
    "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
    "SELECT UPPER(name), ROUND(x, 2) FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_statement_round_trip(sql):
    first = parse(sql)
    rendered = to_sql(first)
    second = parse(rendered)
    assert second == first, rendered


ROUND_TRIP_EXPRESSIONS = [
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "a - (b - c)",
    "a - b - c",
    "NOT a AND b",
    "NOT (a AND b)",
    "a = b AND c <> d",
    "(a = b) = TRUE" if False else "a = b",
    "x NOT BETWEEN 1 AND 2",
    "x IS NULL OR y IS NOT NULL",
    "CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END",
    "-x * 3",
    "a / b / c",
    "x % 3 = 0",
]


@pytest.mark.parametrize("source", ROUND_TRIP_EXPRESSIONS)
def test_expression_round_trip(source):
    first = parse_expression(source)
    rendered = to_sql(first)
    second = parse_expression(rendered)
    assert second == first, rendered


def test_identifier_quoting():
    assert format_identifier("plain_name") == "plain_name"
    assert format_identifier("has space") == '"has space"'
    assert format_identifier("select") == '"select"'
    assert format_identifier("1starts_digit") == '"1starts_digit"'
    assert format_identifier('has"quote') == '"has""quote"'


def test_literal_formatting():
    assert format_literal(None) == "NULL"
    assert format_literal(True) == "TRUE"
    assert format_literal(False) == "FALSE"
    assert format_literal(42) == "42"
    assert format_literal(2.5) == "2.5"
    assert format_literal("it's") == "'it''s'"


def test_float_literal_relexes_as_float():
    rendered = format_literal(1e30)
    assert parse_expression(rendered) == ast.Literal(1e30)


def test_quoted_identifier_round_trip():
    query = parse('SELECT "weird col" FROM "weird table"')
    assert parse(to_sql(query)) == query


# ---------------------------------------------------------------------------
# Property: random parser-canonical expressions round-trip
# ---------------------------------------------------------------------------

_literals = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(ast.Literal),
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False).map(ast.Literal),
    st.text(
        alphabet="abc XYZ'%_", min_size=0, max_size=8
    ).map(ast.Literal),
    st.sampled_from([ast.Literal(None), ast.Literal(True), ast.Literal(False)]),
)
_columns = st.sampled_from(
    [ast.ColumnRef(name="a"), ast.ColumnRef(name="b", table="t"), ast.ColumnRef(name="c")]
)
_atoms = st.one_of(_literals, _columns)


def _binary(children):
    ops = st.sampled_from(["+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"])
    return st.builds(lambda op, l, r: ast.BinaryOp(op=op, left=l, right=r), ops, children, children)


def _negation(children):
    return st.builds(lambda operand: ast.UnaryOp(op="NOT", operand=operand), children)


def _predicates(children):
    return st.one_of(
        st.builds(
            lambda operand, low, high, negated: ast.Between(
                operand=operand, low=low, high=high, negated=negated
            ),
            children, children, children, st.booleans(),
        ),
        st.builds(
            lambda operand, negated: ast.IsNull(operand=operand, negated=negated),
            children, st.booleans(),
        ),
        st.builds(
            lambda operand, items, negated: ast.InList(
                operand=operand, items=items, negated=negated
            ),
            children, st.lists(_atoms, min_size=1, max_size=3), st.booleans(),
        ),
    )


expressions = st.recursive(
    _atoms,
    lambda children: st.one_of(_binary(children), _negation(children), _predicates(children)),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(expressions)
def test_generated_expressions_round_trip(expr):
    rendered = to_sql(expr)
    assert parse_expression(rendered) == expr
