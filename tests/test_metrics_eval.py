"""Tests for metrics, worlds, workloads, harness and experiments."""

import pytest

from repro.eval.harness import (
    build_decomposed,
    build_direct,
    build_model,
    evaluate_engine_on_workload,
    evaluate_query,
)
from repro.eval.metrics import (
    MetricSummary,
    exact_match,
    scalar_relative_error,
    tuple_metrics,
)
from repro.eval.reporting import ResultTable
from repro.eval.workloads import QUERY_CLASSES, queries_by_class, workload_for
from repro.eval.worlds import (
    all_worlds,
    company_world,
    constraints_for,
    geography_world,
    movies_world,
)
from repro.baselines.materialized import MaterializedEngine
from repro.llm.noise import NoiseConfig


# -- metrics ---------------------------------------------------------------------


def test_tuple_metrics_perfect():
    rows = [("a", 1), ("b", 2)]
    metrics = tuple_metrics(rows, rows)
    assert metrics.precision == metrics.recall == metrics.f1 == 1.0


def test_tuple_metrics_partial():
    metrics = tuple_metrics([("a", 1), ("x", 9)], [("a", 1), ("b", 2)])
    assert metrics.precision == 0.5
    assert metrics.recall == 0.5
    assert metrics.f1 == 0.5


def test_tuple_metrics_bag_semantics():
    metrics = tuple_metrics([("a",), ("a",)], [("a",)])
    assert metrics.true_positives == 1
    assert metrics.precision == 0.5


def test_tuple_metrics_numeric_tolerance():
    metrics = tuple_metrics([(100,)], [(104,)], tolerance=0.05)
    assert metrics.f1 == 1.0
    metrics = tuple_metrics([(100,)], [(120,)], tolerance=0.05)
    assert metrics.f1 == 0.0


def test_tuple_metrics_empty_cases():
    assert tuple_metrics([], []).f1 == 1.0
    assert tuple_metrics([("a",)], []).precision == 0.0
    assert tuple_metrics([], [("a",)]).recall == 0.0


def test_exact_match_ordered_and_bag():
    assert exact_match([(1,), (2,)], [(2,), (1,)])
    assert not exact_match([(1,), (2,)], [(2,), (1,)], ordered=True)
    assert exact_match([(1,), (2,)], [(1,), (2,)], ordered=True)


def test_scalar_relative_error():
    assert scalar_relative_error([(100,)], [(100,)]) == 0.0
    assert scalar_relative_error([(90,)], [(100,)]) == pytest.approx(0.1)
    assert scalar_relative_error([], [(100,)]) == 1.0
    assert scalar_relative_error([(1,), (2,)], [(100,)]) == 1.0
    assert scalar_relative_error([("x",)], [(100,)]) == 1.0
    assert scalar_relative_error([(1,)], [("x",)]) is None
    assert scalar_relative_error([(1,)], [(1,), (2,)]) is None


def test_metric_summary_aggregation():
    summary = MetricSummary()
    summary.add(tuple_metrics([(1,)], [(1,)]), True, 0.0, 2, 100, 50.0, 0.01)
    summary.add(tuple_metrics([], [(1,)]), False, None, 4, 300, 150.0, 0.03)
    assert summary.count == 2
    assert summary.mean_f1 == pytest.approx(0.5)
    assert summary.exact_rate == pytest.approx(0.5)
    assert summary.total_calls == 6
    assert summary.mean_tokens == pytest.approx(200.0)
    assert summary.total_cost_usd == pytest.approx(0.04)


# -- worlds ----------------------------------------------------------------------


def test_worlds_are_deterministic():
    first = movies_world()
    second = movies_world()
    assert first.table("movies").rows == second.table("movies").rows


def test_world_sizes():
    geo = geography_world()
    assert geo.row_count("countries") == 55
    assert geo.row_count("cities") == 86
    assert movies_world().row_count("movies") == 240
    assert company_world().row_count("employees") == 160


def test_movies_world_scalable():
    small = movies_world(n_movies=40)
    assert small.row_count("movies") == 40


def test_geography_fk_integrity():
    geo = geography_world()
    countries = {row[0] for row in geo.table("countries").rows}
    for row in geo.table("cities").rows:
        assert row[1] in countries, row


def test_company_fk_integrity():
    world = company_world()
    departments = {row[0] for row in world.table("departments").rows}
    dept_index = world.schema("employees").column_index("department")
    for row in world.table("employees").rows:
        assert row[dept_index] in departments


def test_movies_fk_integrity():
    world = movies_world()
    directors = {row[0] for row in world.table("directors").rows}
    for row in world.table("movies").rows:
        assert row[1] in directors


def test_constraints_catch_wild_values():
    geo = geography_world()
    constraints = constraints_for(geo, "countries")
    population = constraints["population"]
    assert population.check(68000)
    assert not population.check(10**9)
    continent = constraints["continent"]
    assert continent.check("Europe")
    assert not continent.check("Atlantis")


def test_constraints_skip_keys_and_high_cardinality():
    geo = geography_world()
    constraints = constraints_for(geo, "cities")
    assert "city" not in constraints        # primary key
    assert "country" not in constraints     # > 40 distinct values


# -- workloads ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["geography", "movies", "company"])
def test_workloads_cover_all_classes(name):
    world = all_worlds()[name]
    queries = workload_for(world)
    classes = {q.query_class for q in queries}
    assert classes == set(QUERY_CLASSES)


@pytest.mark.parametrize("name", ["geography", "movies", "company"])
def test_workload_queries_execute_on_ground_truth(name):
    world = all_worlds()[name]
    oracle = MaterializedEngine(world)
    for query in workload_for(world):
        result = oracle.execute(query.sql)
        assert result is not None, query.query_id


def test_queries_by_class_grouping():
    world = geography_world()
    grouped = queries_by_class(workload_for(world))
    assert sum(len(v) for v in grouped.values()) == len(workload_for(world))


# -- harness --------------------------------------------------------------------------


def test_evaluate_query_perfect_engine(mini_world):
    from repro.eval.workloads import WorkloadQuery

    model = build_model(mini_world, NoiseConfig.perfect(), seed=1)
    engine = build_decomposed(model, mini_world, with_constraints=False)
    oracle = MaterializedEngine(mini_world)
    query = WorkloadQuery(
        query_id="t", sql="SELECT name FROM countries WHERE continent = 'Asia'",
        query_class="filter", world_name="mini",
    )
    evaluation = evaluate_query(engine, oracle, query)
    assert evaluation.metrics.f1 == 1.0
    assert evaluation.exact
    assert not evaluation.failed


def test_evaluate_query_counts_failures(mini_world):
    from repro.eval.workloads import WorkloadQuery

    model = build_model(mini_world, NoiseConfig.perfect(), seed=1)
    engine = build_decomposed(model, mini_world, with_constraints=False)
    oracle = MaterializedEngine(mini_world)
    query = WorkloadQuery(
        query_id="corr",
        sql=(
            "SELECT name FROM countries k WHERE EXISTS "
            "(SELECT 1 FROM cities c WHERE c.country = k.name)"
        ),
        query_class="filter",
        world_name="mini",
    )
    evaluation = evaluate_query(engine, oracle, query)
    assert evaluation.failed
    assert evaluation.metrics.f1 == 0.0


def test_evaluate_workload_summaries(mini_world):
    model = build_model(mini_world, NoiseConfig.perfect(), seed=1)
    engine = build_decomposed(model, mini_world, with_constraints=False)
    from repro.eval.workloads import WorkloadQuery

    queries = [
        WorkloadQuery("a", "SELECT COUNT(*) FROM countries", "aggregate", "mini"),
        WorkloadQuery("b", "SELECT name FROM countries WHERE gdp > 400", "filter", "mini"),
    ]
    outcome = evaluate_engine_on_workload(engine, mini_world, queries)
    assert outcome.summary().count == 2
    assert outcome.summary("filter").count == 1
    assert outcome.summary().mean_f1 == 1.0


def test_build_direct_runs(mini_world):
    model = build_model(mini_world, NoiseConfig.perfect(), seed=1)
    direct = build_direct(model, mini_world)
    result = direct.execute("SELECT name FROM countries WHERE continent = 'Africa'")
    assert result.rows == [("Kenya",)]


# -- reporting ---------------------------------------------------------------------------


def test_result_table_render_and_save(tmp_path):
    table = ResultTable(title="T", columns=["a", "b"])
    table.add_row("x", 1.5)
    table.add_note("a note")
    text = table.render_text()
    assert "T" in text and "a note" in text
    path = table.save(str(tmp_path / "t.txt"))
    with open(path) as handle:
        assert "T" in handle.read()


def test_result_table_arity_check():
    table = ResultTable(title="T", columns=["a"])
    with pytest.raises(ValueError):
        table.add_row(1, 2)


def test_result_table_column_values():
    table = ResultTable(title="T", columns=["a", "b"])
    table.add_row(1, 2)
    table.add_row(3, 4)
    assert table.column_values("b") == [2, 4]
