"""Shared fixtures: a small deterministic world and engine factories."""

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World
from repro.relational.catalog import Catalog
from repro.relational.executor import ReferenceExecutor
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

COUNTRY_ROWS = [
    ("France", "Europe", 68000, 2780.0),
    ("Germany", "Europe", 84000, 4070.0),
    ("Italy", "Europe", 59000, 2010.0),
    ("Norway", "Europe", 5400, 482.0),
    ("Iceland", "Europe", 370, 28.0),
    ("Japan", "Asia", 125000, 4230.0),
    ("India", "Asia", 1408000, 3390.0),
    ("Kenya", "Africa", 53000, 113.0),
    ("Brazil", "South America", 214300, 1920.0),
    ("Chile", "South America", 19500, 301.0),
]

CITY_ROWS = [
    ("Paris", "France", 2161, True),
    ("Lyon", "France", 522, False),
    ("Berlin", "Germany", 3645, True),
    ("Rome", "Italy", 2873, True),
    ("Oslo", "Norway", 697, True),
    ("Tokyo", "Japan", 13960, True),
    ("Osaka", "Japan", 2691, False),
    ("Delhi", "India", 16787, True),
    ("Nairobi", "Kenya", 4397, True),
    ("Brasilia", "Brazil", 3055, True),
    ("Santiago", "Chile", 6160, True),
]


def make_country_schema() -> TableSchema:
    return TableSchema(
        name="countries",
        columns=(
            Column("name", DataType.TEXT, nullable=False),
            Column("continent", DataType.TEXT),
            Column("population", DataType.INTEGER),
            Column("gdp", DataType.REAL),
        ),
        primary_key=("name",),
        description="test countries",
    )


def make_city_schema() -> TableSchema:
    return TableSchema(
        name="cities",
        columns=(
            Column("city", DataType.TEXT, nullable=False),
            Column("country", DataType.TEXT),
            Column("city_pop", DataType.INTEGER),
            Column("is_capital", DataType.BOOLEAN),
        ),
        primary_key=("city",),
        description="test cities",
    )


@pytest.fixture
def country_table() -> Table:
    return Table(make_country_schema(), COUNTRY_ROWS)


@pytest.fixture
def city_table() -> Table:
    return Table(make_city_schema(), CITY_ROWS)


@pytest.fixture
def mini_world(country_table, city_table) -> World:
    return World("mini", [country_table, city_table])


@pytest.fixture
def mini_catalog(country_table, city_table) -> Catalog:
    catalog = Catalog()
    catalog.register_table(country_table)
    catalog.register_table(city_table)
    return catalog


@pytest.fixture
def reference(mini_catalog) -> ReferenceExecutor:
    return ReferenceExecutor(mini_catalog)


@pytest.fixture
def perfect_model(mini_world) -> SimulatedLLM:
    return SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)


@pytest.fixture
def noisy_model(mini_world) -> SimulatedLLM:
    return SimulatedLLM(mini_world, NoiseConfig(), seed=5)


def make_engine(model, world, config: EngineConfig = EngineConfig()) -> LLMStorageEngine:
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


@pytest.fixture
def perfect_engine(perfect_model, mini_world) -> LLMStorageEngine:
    return make_engine(perfect_model, mini_world)
