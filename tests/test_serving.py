"""Tests for the concurrent multi-query serving layer.

Covers the scheduler primitives (admission order, cancellation,
flight budget, batch makespan), cross-query single-flight dedup and its
semantic-fingerprint scoping, per-query usage attribution (child meters
sum to the session meter exactly), the wall-clock fix for interleaved
queries, and the top-level guarantee: ``execute_many`` — and raw
threads sharing one session — return results byte-identical to serial
execution across storage modes, shard counts, and streaming.
"""

import threading
import time

import pytest

from repro.config import EngineConfig
from repro.core.operators import ModelClient
from repro.core.validation import Validator
from repro.errors import QueryCancelled
from repro.llm.accounting import UsageMeter
from repro.llm.cache import PromptCache
from repro.llm.interface import CompletionOptions
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.runtime.dispatcher import CompletionRequest, Dispatcher
from repro.runtime.retry import RetryPolicy
from repro.runtime.scheduler import (
    CancellationToken,
    CrossQueryDedup,
    FlightBudget,
    QueryScheduler,
    batch_makespan,
)
from tests.conftest import make_engine

WORKLOAD = [
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC",
    "SELECT COUNT(*) FROM cities",
    "SELECT c.city, k.population FROM cities c JOIN countries k "
    "ON c.country = k.name WHERE c.is_capital = TRUE",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT COUNT(*) FROM cities",  # duplicate: overlaps with query 2
    "SELECT AVG(gdp) FROM countries",
]


def typed_rows(result):
    """Rows as (type, value) pairs: byte-identity means types too."""
    return tuple(
        tuple((type(value), value) for value in row) for row in result.rows
    )


def fresh_engine(mini_world, config):
    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    return make_engine(model, mini_world, config)


def serial_reference(mini_world, config, statements):
    engine = fresh_engine(mini_world, config)
    return [typed_rows(engine.execute(sql)) for sql in statements], engine


class SleepingModel:
    """Adds real latency per raw call so queries genuinely overlap."""

    def __init__(self, inner, sleep_s: float = 0.0):
        self._inner = inner
        self._sleep_s = sleep_s
        self._lock = threading.Lock()
        self.raw_calls = 0
        self.open_calls = 0
        self.max_open_calls = 0

    @property
    def model_name(self) -> str:
        return self._inner.model_name

    def complete(self, prompt, options=CompletionOptions()):
        with self._lock:
            self.raw_calls += 1
            self.open_calls += 1
            self.max_open_calls = max(self.max_open_calls, self.open_calls)
        try:
            if self._sleep_s > 0:
                time.sleep(self._sleep_s)
            return self._inner.complete(prompt, options)
        finally:
            with self._lock:
                self.open_calls -= 1


# ---------------------------------------------------------------------------
# Scheduler primitives
# ---------------------------------------------------------------------------


def test_cancellation_token_deadline_and_explicit_cancel():
    clock = {"now": 0.0}
    token = CancellationToken(timeout_s=5.0, clock=lambda: clock["now"])
    token.check()  # within deadline: no-op
    clock["now"] = 5.1
    assert token.cancelled
    with pytest.raises(QueryCancelled, match="timed out after 5"):
        token.check()

    token = CancellationToken()
    token.check()
    token.cancel("caller gave up")
    with pytest.raises(QueryCancelled, match="caller gave up"):
        token.check()


def test_flight_budget_slot_released_on_error():
    budget = FlightBudget(1)
    with pytest.raises(RuntimeError):
        with budget.slot():
            raise RuntimeError("boom")
    with budget.slot():
        pass  # the permit came back


def test_flight_budget_acquire_aborts_on_cancellation():
    budget = FlightBudget(1)
    token = CancellationToken()
    token.cancel()
    with budget.slot():  # hold the only permit
        with pytest.raises(QueryCancelled):
            with budget.slot(token):
                pass


def test_cross_query_dedup_lease_and_release():
    registry = CrossQueryDedup()
    leader = object()
    assert registry.lease(("scope", "p", 0), leader) is None
    assert registry.lease(("scope", "p", 0), object()) is leader
    assert registry.joins == 1
    # A different scope for the same prompt never joins.
    assert registry.lease(("other", "p", 0), object()) is None
    registry.release(("scope", "p", 0), object())  # wrong owner: kept
    assert len(registry) == 2
    registry.release(("scope", "p", 0), leader)
    assert len(registry) == 1


def test_batch_makespan_bounds():
    # jobs=1 is serial: the sum, not the max.
    assert batch_makespan([10.0, 20.0], 0.0, jobs=1, max_in_flight=4) == 30.0
    # Wide enough admission: the longest chain.
    assert batch_makespan([10.0, 20.0], 0.0, jobs=2, max_in_flight=4) == 20.0
    # The dispatcher budget binds when chains would over-overlap.
    assert batch_makespan(
        [10.0, 10.0, 10.0, 10.0], 100.0, jobs=4, max_in_flight=2
    ) == 50.0
    assert batch_makespan([], 0.0, jobs=4, max_in_flight=4) == 0.0


def test_scheduler_priority_overrides_fifo_within_jobs_1():
    order = []
    meter = UsageMeter()

    def runner(statement, _meter, _cancel):
        order.append(statement)
        return statement

    scheduler = QueryScheduler(runner, meter, jobs=1)
    outcomes = scheduler.execute(
        ["low-a", "high", "low-b"], priorities=[0, 5, 0]
    )
    assert order == ["high", "low-a", "low-b"]  # priority, then FIFO
    # Outcomes still come back in submission order.
    assert [outcome.statement for outcome in outcomes] == [
        "low-a",
        "high",
        "low-b",
    ]
    assert all(outcome.ok for outcome in outcomes)


def test_scheduler_argument_validation():
    scheduler = QueryScheduler(lambda s, m, c: s, UsageMeter(), jobs=2)
    with pytest.raises(ValueError, match="priorities"):
        scheduler.execute(["a", "b"], priorities=[1])
    with pytest.raises(ValueError, match="timeout_s"):
        scheduler.execute(["a", "b"], timeout_s=[1.0])


def test_scheduler_explicit_cancel_via_job_handle():
    started = threading.Event()

    def runner(statement, _meter, cancel):
        if statement == "victim":
            started.set()
            for _ in range(200):
                cancel.check()
                time.sleep(0.005)
            raise AssertionError("cancellation never landed")
        return statement

    scheduler = QueryScheduler(runner, UsageMeter(), jobs=2)

    def cancel_victim():
        assert started.wait(timeout=5.0)
        for job in scheduler.admitted:
            if job.statement == "victim":
                job.request_cancel("operator cancelled")

    canceller = threading.Thread(target=cancel_victim)
    canceller.start()
    outcomes = scheduler.execute(["victim", "bystander"])
    canceller.join()
    assert outcomes[0].status == "cancelled"
    assert "operator cancelled" in str(outcomes[0].error)
    assert outcomes[1].status == "ok"


def test_scheduler_cancel_while_queued_is_not_lost():
    ran = []

    def runner(statement, _meter, cancel):
        cancel.check()
        if statement == "first":
            # Cancel the still-queued second job from inside the first:
            # with jobs=1 it has no token yet, so this exercises the
            # pending-cancel path.
            for job in scheduler.admitted:
                if job.statement == "second":
                    job.request_cancel("cancelled while queued")
        ran.append(statement)
        return statement

    scheduler = QueryScheduler(runner, UsageMeter(), jobs=1)
    outcomes = scheduler.execute(["first", "second"])
    assert outcomes[0].status == "ok"
    assert outcomes[1].status == "cancelled"
    assert "cancelled while queued" in str(outcomes[1].error)
    assert ran == ["first"]  # the cancelled query never executed


def test_scheduler_isolates_per_query_failures():
    def runner(statement, _meter, _cancel):
        if statement == "bad":
            raise RuntimeError("query exploded")
        return statement.upper()

    scheduler = QueryScheduler(runner, UsageMeter(), jobs=2)
    outcomes = scheduler.execute(["ok", "bad", "also ok"])
    assert [outcome.status for outcome in outcomes] == ["ok", "error", "ok"]
    assert outcomes[0].result == "OK"
    assert isinstance(outcomes[1].error, RuntimeError)
    assert outcomes[2].result == "ALSO OK"


# ---------------------------------------------------------------------------
# Cross-query single-flight through the dispatcher
# ---------------------------------------------------------------------------


class GatedModel:
    """A model whose calls block until released — forces true overlap."""

    model_name = "gated-test-model"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt, options=CompletionOptions()):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=5.0), "gate never released"
        from repro.llm.interface import Completion

        return Completion(
            text=f"answer:{prompt}:{options.sample_index}",
            prompt_tokens=7,
            completion_tokens=3,
            latency_ms=10.0,
        )


def make_query_dispatcher(model, shared, scope, cache, meter):
    """The per-query stack the engine builds, minus the engine."""
    from repro.llm.accounting import MeteredModel
    from repro.llm.cache import CachingModel
    from repro.runtime.latency import LatencyLedger

    caching = CachingModel(model, cache)
    metered = MeteredModel(caching, meter, track_wall=False)
    return Dispatcher(
        model=metered,
        options_for=lambda i: CompletionOptions(sample_index=i),
        retry=RetryPolicy(max_attempts=2),
        max_in_flight=4,
        ledger=LatencyLedger(on_commit=meter.add_wall_ms),
        raw_model=model,
        cache=cache,
        meter=meter,
        shared=shared,
        dedup_scope=scope,
    )


def req(prompt):
    return CompletionRequest(
        prompt=prompt, sample_index=0, parse=lambda c: c.text
    )


def test_cross_query_follower_joins_and_pays_zero_tokens():
    model = GatedModel()
    shared = CrossQueryDedup()
    cache = PromptCache()
    meter_a, meter_b = UsageMeter(), UsageMeter()
    query_a = make_query_dispatcher(model, shared, ("m", "cfg"), cache, meter_a)
    query_b = make_query_dispatcher(model, shared, ("m", "cfg"), cache, meter_b)
    try:
        leader = query_a.submit(req("scan page 1"))
        assert model.started.wait(timeout=5.0)  # A's call is in flight
        follower = query_b.submit(req("scan page 1"))
        model.release.set()
        assert leader.result(timeout=5.0).value == follower.result(timeout=5.0).value
    finally:
        query_a.close()
        query_b.close()
    assert model.calls == 1  # paid once across the two queries
    assert shared.joins == 1
    assert query_b.stats.cross_query_deduplicated == 1
    # The leader paid the tokens; the follower recorded a zero-cost
    # call plus the dedup attribution.
    assert meter_a.snapshot().total_tokens == 10
    assert meter_b.snapshot().total_tokens == 0
    assert meter_b.snapshot().calls == 1
    assert meter_b.snapshot().dedup_hits == 1
    assert meter_a.snapshot().dedup_hits == 0


def test_failed_leader_join_counts_no_dedup_hit():
    from repro.errors import LLMProtocolError

    model = GatedModel()
    shared = CrossQueryDedup()
    cache = PromptCache()
    meter_a, meter_b = UsageMeter(), UsageMeter()
    query_a = make_query_dispatcher(model, shared, ("m", "cfg"), cache, meter_a)
    query_b = make_query_dispatcher(model, shared, ("m", "cfg"), cache, meter_b)

    def failing_parse(_completion):
        raise LLMProtocolError("unusable")

    try:
        leader = query_a.submit(
            CompletionRequest(
                prompt="scan page 1", sample_index=0, parse=failing_parse
            )
        )
        assert model.started.wait(timeout=5.0)
        follower = query_b.submit(req("scan page 1"))
        model.release.set()
        with pytest.raises(Exception, match="unusable"):
            leader.result(timeout=5.0)
        # The follower still completes (its replay re-runs the request
        # through its own stack) — but the join saved nothing it can
        # prove, so no dedup hit is attributed.
        assert follower.result(timeout=5.0).value.startswith("answer:")
    finally:
        query_a.close()
        query_b.close()
    assert meter_b.snapshot().dedup_hits == 0


def test_cache_less_dispatchers_never_join_the_shared_registry():
    # Without a shared cache a join can never save anything: the
    # follower would wait out the leader and then re-pay full price.
    model = GatedModel()
    shared = CrossQueryDedup()
    meter_a, meter_b = UsageMeter(), UsageMeter()
    query_a = make_query_dispatcher(model, shared, ("m", "cfg"), None, meter_a)
    query_b = make_query_dispatcher(model, shared, ("m", "cfg"), None, meter_b)
    try:
        first = query_a.submit(req("scan page 1"))
        assert model.started.wait(timeout=5.0)
        second = query_b.submit(req("scan page 1"))
        time.sleep(0.05)
        model.release.set()
        first.result(timeout=5.0)
        second.result(timeout=5.0)
    finally:
        query_a.close()
        query_b.close()
    assert len(shared) == 0
    assert shared.joins == 0
    assert model.calls == 2  # both led independently, as sequential would
    assert meter_b.snapshot().dedup_hits == 0


def test_cross_query_dedup_never_crosses_semantic_fingerprints():
    model = GatedModel()
    shared = CrossQueryDedup()
    meter_a, meter_b = UsageMeter(), UsageMeter()
    # Same prompt, same shared registry — but differing scopes (e.g.
    # different validation or page-size fingerprints).
    query_a = make_query_dispatcher(
        model, shared, ("m", "cfg-a"), PromptCache(), meter_a
    )
    query_b = make_query_dispatcher(
        model, shared, ("m", "cfg-b"), PromptCache(), meter_b
    )
    try:
        first = query_a.submit(req("scan page 1"))
        assert model.started.wait(timeout=5.0)
        second = query_b.submit(req("scan page 1"))
        time.sleep(0.05)  # give a (wrong) join the chance to happen
        model.release.set()
        first.result(timeout=5.0)
        second.result(timeout=5.0)
    finally:
        query_a.close()
        query_b.close()
    assert model.calls == 2  # both scopes paid their own call
    assert shared.joins == 0
    assert meter_a.snapshot().total_tokens == 10
    assert meter_b.snapshot().total_tokens == 10
    assert meter_b.snapshot().dedup_hits == 0


# ---------------------------------------------------------------------------
# Engine-level serving
# ---------------------------------------------------------------------------

CONFIG_MATRIX = [
    pytest.param(EngineConfig().with_(page_size=4), id="plain"),
    pytest.param(
        EngineConfig().with_(page_size=4, max_in_flight=4), id="concurrent"
    ),
    pytest.param(
        EngineConfig().with_(page_size=4, storage_mode="result_cache"),
        id="result-cache",
    ),
    pytest.param(
        EngineConfig().with_(
            page_size=4, max_in_flight=4, storage_mode="materialize"
        ),
        id="materialize",
    ),
    pytest.param(
        EngineConfig().with_(
            page_size=4, max_in_flight=4, scan_shards=3, shard_min_rows=2
        ),
        id="sharded",
    ),
    pytest.param(
        EngineConfig().with_(page_size=4, enable_streaming=False),
        id="no-streaming",
    ),
]


@pytest.mark.parametrize("config", CONFIG_MATRIX)
def test_execute_many_byte_identical_to_serial(mini_world, config):
    expected, _ = serial_reference(mini_world, config, WORKLOAD)
    engine = fresh_engine(mini_world, config)
    results = engine.execute_many(WORKLOAD, jobs=4)
    assert [typed_rows(result) for result in results] == expected


def test_threads_sharing_one_session_byte_identical(mini_world):
    config = EngineConfig().with_(page_size=4, max_in_flight=4)
    expected, _ = serial_reference(mini_world, config, WORKLOAD)
    engine = fresh_engine(mini_world, config)
    results = [None] * len(WORKLOAD)

    def run(index):
        results[index] = typed_rows(engine.execute(WORKLOAD[index]))

    threads = [
        threading.Thread(target=run, args=(index,))
        for index in range(len(WORKLOAD))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results == expected


def test_per_query_meters_sum_to_session_meter(mini_world):
    config = EngineConfig().with_(
        page_size=4, max_in_flight=4, storage_mode="materialize"
    )
    engine = fresh_engine(mini_world, config)
    results = engine.execute_many(WORKLOAD, jobs=3)
    session = engine.usage
    for name in (
        "calls",
        "prompt_tokens",
        "completion_tokens",
        "pages_fetched",
        "pages_skipped",
        "sharded_scans",
        "shard_chains",
        "result_cache_hits",
        "fragment_hits",
        "calls_saved",
        "dedup_hits",
    ):
        assert sum(getattr(r.usage, name) for r in results) == getattr(
            session, name
        ), name
    assert sum(r.usage.latency_ms for r in results) == pytest.approx(
        session.latency_ms
    )
    assert sum(r.usage.cost_usd for r in results) == pytest.approx(
        session.cost_usd
    )


def test_session_wall_is_batch_critical_path_not_sum(mini_world):
    config = EngineConfig().with_(page_size=4, max_in_flight=4)
    engine = fresh_engine(mini_world, config)
    outcomes = engine.execute_many(WORKLOAD, jobs=3, collect_outcomes=True)
    walls = [outcome.usage.wall_ms for outcome in outcomes]
    session_wall = engine.usage.wall_ms
    assert max(walls) > 0
    # Overlap: the batch's elapsed critical path, never the sum of
    # per-query chains (that would double-count overlapped time) and
    # never less than the longest chain or the budget bound.
    assert session_wall < sum(walls)
    total_model_ms = sum(outcome.usage.latency_ms for outcome in outcomes)
    assert session_wall == pytest.approx(
        batch_makespan(walls, total_model_ms, jobs=3, max_in_flight=4)
    )
    assert session_wall >= max(walls)
    assert session_wall >= total_model_ms / 4 - 1e-6


def test_jobs_1_wall_equals_serial_sum(mini_world):
    config = EngineConfig().with_(page_size=4)
    engine = fresh_engine(mini_world, config)
    outcomes = engine.execute_many(WORKLOAD, jobs=1, collect_outcomes=True)
    assert engine.usage.wall_ms == pytest.approx(
        sum(outcome.usage.wall_ms for outcome in outcomes)
    )
    serial_engine = fresh_engine(mini_world, config)
    for sql in WORKLOAD:
        serial_engine.execute(sql)
    assert engine.usage.wall_ms == pytest.approx(serial_engine.usage.wall_ms)
    assert engine.usage.calls == serial_engine.usage.calls
    assert engine.usage.total_tokens == serial_engine.usage.total_tokens


def test_overlapping_queries_pay_shared_traffic_once(mini_world):
    config = EngineConfig().with_(page_size=4, max_in_flight=8)
    serial_rows, serial_engine = serial_reference(
        mini_world, config, ["SELECT COUNT(*) FROM cities"] * 4
    )
    raw = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    model = SleepingModel(raw, sleep_s=0.05)
    engine = make_engine(model, mini_world, config)
    results = engine.execute_many(["SELECT COUNT(*) FROM cities"] * 4, jobs=4)
    assert [typed_rows(result) for result in results] == serial_rows
    # The scan was paid for exactly once across the four queries: same
    # raw-model traffic as the serial session (where queries 2-4 were
    # prompt-cache hits), and the overlap shows up as dedup joins.
    assert engine.usage.total_tokens == serial_engine.usage.total_tokens
    assert engine.usage.calls == serial_engine.usage.calls
    assert engine.usage.dedup_hits > 0


def test_flight_budget_caps_open_calls_across_queries(mini_world):
    config = EngineConfig().with_(page_size=4, max_in_flight=2)
    raw = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    model = SleepingModel(raw, sleep_s=0.01)
    engine = make_engine(model, mini_world, config)
    engine.execute_many(WORKLOAD, jobs=6)
    assert model.max_open_calls <= 2


def test_per_query_timeout_cancels_only_that_query(mini_world):
    config = EngineConfig().with_(page_size=2)
    raw = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    model = SleepingModel(raw, sleep_s=0.08)
    engine = make_engine(model, mini_world, config)
    outcomes = engine.execute_many(
        [
            "SELECT name, population, gdp, continent FROM countries",
            "SELECT COUNT(*) FROM cities",
        ],
        jobs=2,
        timeout_s=[0.05, None],
        collect_outcomes=True,
    )
    assert outcomes[0].status == "cancelled"
    assert isinstance(outcomes[0].error, QueryCancelled)
    assert "timed out" in str(outcomes[0].error)
    assert outcomes[1].status == "ok"
    assert len(outcomes[1].result.rows) == 1
    # Default (non-collecting) mode surfaces the cancellation.
    with pytest.raises(QueryCancelled):
        engine.execute_many(
            ["SELECT name, population, gdp, continent FROM countries"],
            jobs=1,
            timeout_s=0.05,
        )


def test_execute_many_raises_first_error_in_statement_order(mini_world):
    config = EngineConfig().with_(page_size=4)
    engine = fresh_engine(mini_world, config)
    with pytest.raises(Exception, match="no_such"):
        engine.execute_many(
            [
                "SELECT COUNT(*) FROM cities",
                "SELECT * FROM no_such_table",
                "SELECT COUNT(*) FROM countries",
            ],
            jobs=2,
        )


def test_serve_jobs_config_validation_and_default(mini_world):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="serve_jobs"):
        EngineConfig(serve_jobs=0)
    config = EngineConfig().with_(page_size=4, serve_jobs=2)
    engine = fresh_engine(mini_world, config)
    results = engine.execute_many(WORKLOAD[:3])  # jobs defaults from config
    assert len(results) == 3


def test_cli_statement_splitter_respects_string_literals():
    from repro.cli import split_statements

    text = (
        "SELECT title FROM movies WHERE title = 'a--b';\n"
        "-- a real comment\n"
        "SELECT title FROM movies WHERE title = 'x;y';  -- trailing\n"
        "SELECT title FROM movies WHERE title = 'it''s; fine';\n"
        'SELECT "a;b" FROM movies;\n'
        'SELECT "a--b" FROM movies;\n'
    )
    assert split_statements(text) == [
        "SELECT title FROM movies WHERE title = 'a--b'",
        "SELECT title FROM movies WHERE title = 'x;y'",
        "SELECT title FROM movies WHERE title = 'it''s; fine'",
        'SELECT "a;b" FROM movies',
        'SELECT "a--b" FROM movies',
    ]
    assert split_statements("  ;; -- only noise\n;") == []


def test_cli_batch_mode(tmp_path, capsys):
    from repro.cli import main

    batch = tmp_path / "queries.sql"
    batch.write_text(
        "SELECT COUNT(*) FROM movies;\n"
        "-- a comment-only line\n"
        "SELECT COUNT(*) FROM movies;\n"
    )
    code = main(
        [
            "--world",
            "movies",
            "--gap",
            "0",
            "--sampling",
            "0",
            "--jobs",
            "2",
            "--batch",
            str(batch),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- [1] SELECT COUNT(*) FROM movies" in out
    assert "-- [2] SELECT COUNT(*) FROM movies" in out
    assert "2 ok, 0 failed" in out
    assert "session usage:" in out


def test_cli_batch_reports_per_statement_errors(tmp_path, capsys):
    from repro.cli import main

    batch = tmp_path / "queries.sql"
    batch.write_text(
        "SELECT COUNT(*) FROM movies;\nSELECT * FROM nonexistent;\n"
    )
    code = main(["--world", "movies", "--batch", str(batch)])
    out = capsys.readouterr().out
    assert code == 1
    assert "error:" in out
    assert "1 ok, 1 failed" in out


def test_cli_jobs_requires_batch(capsys):
    from repro.cli import main

    code = main(
        ["--world", "movies", "--jobs", "4", "-c", "SELECT COUNT(*) FROM movies"]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "--jobs requires --batch" in captured.err


def test_cli_batch_rejects_undecodable_file(tmp_path, capsys):
    from repro.cli import main

    batch = tmp_path / "queries.sql"
    batch.write_bytes("SELECT 'caf\xe9';".encode("latin-1"))  # not UTF-8
    code = main(["--world", "movies", "--batch", str(batch)])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot read batch file" in captured.err


# ---------------------------------------------------------------------------
# Continuous cross-query batching
# ---------------------------------------------------------------------------


def test_continuous_batching_byte_identical_to_serial(mini_world):
    config = EngineConfig().with_(
        enable_continuous_batching=True, batch_slots=8, max_in_flight=4
    )
    expected, _ = serial_reference(mini_world, EngineConfig(), WORKLOAD)
    engine = fresh_engine(mini_world, config)
    try:
        results = engine.execute_many(WORKLOAD, jobs=len(WORKLOAD))
        assert [typed_rows(r) for r in results] == expected
    finally:
        engine.close()


def test_continuous_batching_usage_identical_to_serial(mini_world):
    config = EngineConfig().with_(
        enable_continuous_batching=True, batch_slots=8, max_in_flight=4
    )
    _, serial_engine = serial_reference(mini_world, EngineConfig(), WORKLOAD)
    engine = fresh_engine(mini_world, config)
    try:
        engine.execute_many(WORKLOAD, jobs=len(WORKLOAD))
        a, b = serial_engine.usage, engine.usage
        assert (a.calls, a.prompt_tokens, a.completion_tokens) == (
            b.calls,
            b.prompt_tokens,
            b.completion_tokens,
        )
        assert a.cost_usd == b.cost_usd
        # Same per-call latencies, merged in completion order: equal up
        # to float summation order.
        assert b.latency_ms == pytest.approx(a.latency_ms)
    finally:
        engine.close()


def test_serving_slots_prices_the_batch_pool(mini_world):
    config = EngineConfig().with_(
        enable_continuous_batching=True, batch_slots=16, max_in_flight=4
    )
    engine = fresh_engine(mini_world, config)
    try:
        assert engine._session.serving_slots == 16
    finally:
        engine.close()
    plain = fresh_engine(mini_world, EngineConfig().with_(max_in_flight=4))
    assert plain._session.serving_slots == 4
    assert plain._session.batcher is None


def test_batcher_coalesces_calls_across_queries(mini_world):
    """Overlapping queries land in shared waves, not one-by-one."""
    import asyncio

    from repro.llm.transport import SimulatedTransport
    from repro.runtime.batching import ContinuousBatcher

    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)

    class SlowWaveTransport(SimulatedTransport):
        async def complete_async(self, prompt, options=CompletionOptions()):
            await asyncio.sleep(0.05)
            return self.complete(prompt, options)

    batcher = ContinuousBatcher(SlowWaveTransport(model), slots=8)
    try:
        opts = CompletionOptions()
        first = batcher.submit("warm-up prompt", opts)
        time.sleep(0.01)  # wave 1 in flight; the rest queue behind it
        rest = [batcher.submit(f"probe prompt {i}", opts) for i in range(4)]
        for future in [first, *rest]:
            future.result(timeout=10)
        assert batcher.stats.completed == 5
        assert batcher.stats.max_batch >= 2
        assert batcher.stats.waves < 5
        assert batcher.wave_trace[0]["slots"] == 8
    finally:
        batcher.close()


def test_cancelled_request_reclaims_slot_without_poisoning_wave(mini_world):
    """A cancelled query's queued slots are reclaimed; co-batched
    requests from other queries complete untouched."""
    import asyncio

    from repro.llm.transport import SimulatedTransport
    from repro.runtime.batching import ContinuousBatcher

    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)

    class SlowWaveTransport(SimulatedTransport):
        async def complete_async(self, prompt, options=CompletionOptions()):
            await asyncio.sleep(0.05)
            return self.complete(prompt, options)

    transport = SlowWaveTransport(model)
    batcher = ContinuousBatcher(transport, slots=8)
    try:
        opts = CompletionOptions()
        blocker = batcher.submit("wave-one blocker", opts)
        time.sleep(0.01)
        doomed_token = CancellationToken()
        doomed_token.cancel("client went away")
        doomed = batcher.submit("doomed prompt", opts, cancel=doomed_token)
        survivor = batcher.submit("survivor prompt", opts)
        with pytest.raises(QueryCancelled, match="client went away"):
            doomed.result(timeout=10)
        assert survivor.result(timeout=10) == transport.complete(
            "survivor prompt", opts
        )
        blocker.result(timeout=10)
        assert batcher.stats.cancelled_reclaimed == 1
        assert batcher.stats.completed == 2
        assert batcher.stats.failed == 0
    finally:
        batcher.close()


def test_timeout_token_reclaimed_by_batcher(mini_world):
    from repro.llm.transport import SimulatedTransport
    from repro.runtime.batching import ContinuousBatcher

    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    batcher = ContinuousBatcher(SimulatedTransport(model), slots=4)
    try:
        expired = CancellationToken(timeout_s=0.0)
        time.sleep(0.001)
        future = batcher.submit("late prompt", CompletionOptions(), cancel=expired)
        with pytest.raises(QueryCancelled, match="timed out"):
            future.result(timeout=10)
        assert batcher.stats.cancelled_reclaimed == 1
    finally:
        batcher.close()


def test_execute_many_timeout_under_continuous_batching(mini_world):
    """The existing per-query timeout semantics survive the batch pool:
    the victim is cancelled, co-batched queries stay byte-identical."""
    config = EngineConfig().with_(
        page_size=2, enable_continuous_batching=True, batch_slots=8
    )
    raw = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    model = SleepingModel(raw, sleep_s=0.08)
    engine = make_engine(model, mini_world, config)
    try:
        outcomes = engine.execute_many(
            [
                "SELECT name, population, gdp, continent FROM countries",
                "SELECT COUNT(*) FROM cities",
            ],
            jobs=2,
            timeout_s=[0.05, None],
            collect_outcomes=True,
        )
        assert outcomes[0].status == "cancelled"
        assert isinstance(outcomes[0].error, QueryCancelled)
        assert outcomes[1].status == "ok"
        reference = fresh_engine(mini_world, EngineConfig()).execute(
            "SELECT COUNT(*) FROM cities"
        )
        assert typed_rows(outcomes[1].result) == typed_rows(reference)
        # The pool survives a cancelled query: the engine keeps serving.
        after = engine.execute("SELECT COUNT(*) FROM cities")
        assert typed_rows(after) == typed_rows(reference)
    finally:
        engine.close()


def test_batcher_isolates_per_request_failures(mini_world):
    from repro.errors import TransportError
    from repro.llm.transport import SimulatedTransport
    from repro.runtime.batching import ContinuousBatcher

    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)

    class FlakyTransport(SimulatedTransport):
        async def complete_async(self, prompt, options=CompletionOptions()):
            if prompt.startswith("explode"):
                raise TransportError("wire melted")
            return self.complete(prompt, options)

    transport = FlakyTransport(model)
    batcher = ContinuousBatcher(transport, slots=8)
    try:
        opts = CompletionOptions()
        bad = batcher.submit("explode now", opts)
        good = batcher.submit("fine prompt", opts)
        with pytest.raises(TransportError, match="wire melted"):
            bad.result(timeout=10)
        assert good.result(timeout=10) == transport.complete("fine prompt", opts)
        assert batcher.stats.failed == 1
        assert batcher.stats.completed == 1
    finally:
        batcher.close()


def test_batcher_rejects_submissions_after_close(mini_world):
    from repro.errors import TransportError
    from repro.llm.transport import SimulatedTransport
    from repro.runtime.batching import ContinuousBatcher

    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    batcher = ContinuousBatcher(SimulatedTransport(model), slots=2)
    batcher.close()
    future = batcher.submit("too late", CompletionOptions())
    with pytest.raises(TransportError):
        future.result(timeout=10)


def test_batching_gate_is_identity_for_results(mini_world):
    from repro.llm.transport import SimulatedTransport
    from repro.runtime.batching import BatchingGate, ContinuousBatcher

    model = SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5)
    batcher = ContinuousBatcher(SimulatedTransport(model), slots=4)
    try:
        gate = BatchingGate(model, batcher)
        assert gate.model_name == model.model_name
        prompt = "identity probe"
        assert gate.complete(prompt) == model.complete(prompt)
        requests = [(f"probe {i}", CompletionOptions()) for i in range(3)]
        direct = [model.complete(p, o) for p, o in requests]
        assert gate.complete_many(requests) == direct
    finally:
        batcher.close()


def test_event_loop_core_refuses_reentrant_run():
    import asyncio

    from repro.runtime.dispatcher import get_event_loop_core

    core = get_event_loop_core()

    async def nested():
        try:
            core.run(asyncio.sleep(0))
        except RuntimeError:
            return "refused"
        return "allowed"

    assert core.run(nested()) == "refused"
