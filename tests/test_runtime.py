"""The concurrent execution runtime.

The invariant every test here circles: concurrency is *semantics-free*.
For a fixed seed and configuration, ``max_in_flight`` may change only
the reported critical-path wall-clock (``wall_ms``) — never result
rows, token usage, call counts, or serialized latency.
"""

import threading

import pytest

from repro.config import EngineConfig
from repro.core.virtual import VirtualTable
from repro.errors import ExecutionError, LLMProtocolError
from repro.llm.accounting import UsageMeter, UsageSnapshot
from repro.llm.cache import CachingModel, PromptCache
from repro.llm.interface import (
    Completion,
    CompletionOptions,
    SequentialBatchAdapter,
    TracingModel,
    as_batching,
)
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.plan.physical import ScanStep
from repro.runtime.dispatcher import CompletionRequest, Dispatcher
from repro.runtime.latency import LatencyLedger
from repro.runtime.parallel import run_parallel
from repro.runtime.retry import RETRY_NONCE, RetryPolicy

from tests.conftest import make_country_schema, make_engine


# ---------------------------------------------------------------------------
# Test doubles
# ---------------------------------------------------------------------------


class FixedLatencyModel:
    """Deterministic model: echoes the prompt, fixed simulated latency."""

    model_name = "fixed"

    def __init__(self, latency_ms: float = 100.0, gate: threading.Event = None):
        self.latency_ms = latency_ms
        self.calls = 0
        self.started = threading.Event()
        self.gate = gate
        self._lock = threading.Lock()

    def complete(self, prompt, options=CompletionOptions()):
        with self._lock:
            self.calls += 1
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=5.0), "test gate never opened"
        return Completion(
            text=f"answer:{prompt}:{options.sample_index}",
            prompt_tokens=7,
            completion_tokens=3,
            latency_ms=self.latency_ms,
        )


def make_dispatcher(model, max_in_flight, meter=None, cache=None, retry=None):
    """The same stack ModelClient builds: cache → meter → dispatcher."""
    meter = meter or UsageMeter()
    inner = model
    if cache is not None:
        inner = CachingModel(inner, cache)
    from repro.llm.accounting import MeteredModel

    metered = MeteredModel(inner, meter, track_wall=False)
    ledger = LatencyLedger(on_commit=meter.add_wall_ms)
    dispatcher = Dispatcher(
        model=metered,
        options_for=lambda i: CompletionOptions(sample_index=i),
        retry=retry or RetryPolicy(max_attempts=3),
        max_in_flight=max_in_flight,
        ledger=ledger,
        raw_model=model,
        cache=cache,
        meter=meter,
    )
    return dispatcher, meter


def req(prompt, sample_index=0):
    return CompletionRequest(
        prompt=prompt, sample_index=sample_index, parse=lambda c: c.text
    )


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_backoff_sequence():
    policy = RetryPolicy(backoff_base_ms=100.0, backoff_multiplier=2.0)
    assert [policy.delay_ms(a) for a in range(3)] == [100.0, 200.0, 400.0]


def test_retry_policy_backoff_cap():
    policy = RetryPolicy(backoff_base_ms=100.0, backoff_cap_ms=150.0)
    assert policy.delay_ms(5) == 150.0


def test_retry_policy_zero_base_never_sleeps():
    slept = []
    policy = RetryPolicy(backoff_base_ms=0.0, sleeper=slept.append)
    policy.sleep(policy.delay_ms(2))
    assert slept == []


def test_retry_policy_sleeper_receives_seconds():
    slept = []
    policy = RetryPolicy(backoff_base_ms=500.0, sleeper=slept.append)
    policy.sleep(policy.delay_ms(0))
    assert slept == [0.5]


def test_retry_policy_from_config():
    config = EngineConfig().with_(max_retries=4, retry_backoff_ms=25.0)
    policy = RetryPolicy.from_config(config)
    assert policy.max_attempts == 5
    assert policy.backoff_base_ms == 25.0
    assert policy.nonce_for(2) == 2 * RETRY_NONCE


def test_retry_through_dispatcher_bumps_nonce_and_charges_backoff():
    class FlakyModel:
        model_name = "flaky"

        def __init__(self):
            self.seen = []

        def complete(self, prompt, options=CompletionOptions()):
            self.seen.append(options.sample_index)
            text = "bad" if len(self.seen) < 3 else "good"
            return Completion(
                text=text, prompt_tokens=1, completion_tokens=1, latency_ms=10.0
            )

    def parse(completion):
        if completion.text == "bad":
            raise LLMProtocolError("still bad")
        return completion.text

    model = FlakyModel()
    slept = []
    retry = RetryPolicy(max_attempts=3, backoff_base_ms=100.0, sleeper=slept.append)
    dispatcher, meter = make_dispatcher(model, max_in_flight=1, retry=retry)
    result = dispatcher.run_one(
        CompletionRequest(prompt="p", sample_index=0, parse=parse)
    )
    assert result == "good"
    assert model.seen == [0, RETRY_NONCE, 2 * RETRY_NONCE]
    assert slept == [0.1, 0.2]
    # 3 calls × 10 ms plus 100 + 200 ms of backoff, all on the critical path.
    assert meter.wall_ms == pytest.approx(330.0)


def test_retry_exhaustion_matches_sequential_message():
    class RefusingModel:
        model_name = "refuser"

        def complete(self, prompt, options=CompletionOptions()):
            return Completion(
                text="no", prompt_tokens=1, completion_tokens=1, latency_ms=1.0
            )

    def parse(completion):
        raise LLMProtocolError("refused")

    dispatcher, _ = make_dispatcher(
        RefusingModel(), max_in_flight=4, retry=RetryPolicy(max_attempts=2)
    )
    with pytest.raises(ExecutionError, match="after 2 attempts"):
        dispatcher.run_one(CompletionRequest(prompt="p", sample_index=0, parse=parse))


# ---------------------------------------------------------------------------
# Dispatcher: wall-clock accounting
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "max_in_flight,expected_wall",
    [(1, 400.0), (2, 200.0), (4, 100.0), (16, 100.0)],
)
def test_wave_makespan_respects_slot_count(max_in_flight, expected_wall):
    dispatcher, meter = make_dispatcher(
        FixedLatencyModel(latency_ms=100.0), max_in_flight=max_in_flight
    )
    dispatcher.run_wave([req(f"p{i}") for i in range(4)])
    dispatcher.close()
    assert meter.wall_ms == pytest.approx(expected_wall)
    # Serialized model time is concurrency-independent.
    assert meter.snapshot().latency_ms == pytest.approx(400.0)


def test_sequential_waves_accumulate():
    dispatcher, meter = make_dispatcher(
        FixedLatencyModel(latency_ms=50.0), max_in_flight=8
    )
    dispatcher.run_wave([req("a1"), req("a2")])
    dispatcher.run_wave([req("b1"), req("b2")])
    dispatcher.close()
    assert meter.wall_ms == pytest.approx(100.0)  # two overlapped stages


def test_usage_snapshot_wall_arithmetic():
    a = UsageSnapshot(calls=2, latency_ms=100.0, wall_ms=60.0)
    b = UsageSnapshot(calls=5, latency_ms=300.0, wall_ms=110.0)
    assert b.minus(a).wall_ms == pytest.approx(50.0)
    assert a.plus(b).wall_ms == pytest.approx(170.0)
    assert b.speedup == pytest.approx(300.0 / 110.0)


def test_run_parallel_charges_max_branch():
    meter = UsageMeter()
    ledger = LatencyLedger(on_commit=meter.add_wall_ms)

    def work(ms):
        def thunk():
            ledger.add(ms)
            return ms

        return thunk

    results = run_parallel(ledger, [work(100.0), work(250.0), work(40.0)])
    assert results == [100.0, 250.0, 40.0]
    assert meter.wall_ms == pytest.approx(250.0)


def test_run_parallel_nested_branches_roll_up():
    meter = UsageMeter()
    ledger = LatencyLedger(on_commit=meter.add_wall_ms)

    def inner():
        run_parallel(ledger, [lambda: ledger.add(70.0), lambda: ledger.add(30.0)])
        ledger.add(10.0)
        return "inner"

    run_parallel(ledger, [inner, lambda: ledger.add(20.0)])
    # inner branch = max(70, 30) + 10 = 80; outer = max(80, 20).
    assert meter.wall_ms == pytest.approx(80.0)


def test_run_parallel_reraises_in_step_order():
    ledger = LatencyLedger()

    def boom(tag):
        def thunk():
            raise ValueError(tag)

        return thunk

    with pytest.raises(ValueError, match="first"):
        run_parallel(ledger, [boom("first"), boom("second")])


# ---------------------------------------------------------------------------
# Dispatcher: single-flight deduplication
# ---------------------------------------------------------------------------


def test_single_flight_shares_one_underlying_call():
    gate = threading.Event()
    model = FixedLatencyModel(latency_ms=10.0, gate=gate)
    cache = PromptCache()
    dispatcher, meter = make_dispatcher(model, max_in_flight=4, cache=cache)

    leader = dispatcher.submit(req("same"))
    assert model.started.wait(timeout=5.0)
    followers = [dispatcher.submit(req("same")) for _ in range(3)]
    gate.set()

    texts = {leader.result().value} | {f.result().value for f in followers}
    dispatcher.close()
    assert texts == {"answer:same:0"}
    assert model.calls == 1
    assert dispatcher.stats.deduplicated == 3
    snapshot = meter.snapshot()
    # Four metered calls, but the tokens were paid once — exactly what a
    # sequential run (one miss, three cache hits) records.
    assert snapshot.calls == 4
    assert snapshot.total_tokens == 10


def test_duplicates_without_cache_pay_like_sequential():
    model = FixedLatencyModel(latency_ms=10.0)
    dispatcher, meter = make_dispatcher(model, max_in_flight=4, cache=None)
    results = dispatcher.run_wave([req("same"), req("same")])
    dispatcher.close()
    assert results == ["answer:same:0"] * 2
    # No cache → sequential would pay twice; dedup must not change that.
    assert meter.snapshot().total_tokens == 20


def test_distinct_sample_indexes_are_not_deduplicated():
    model = FixedLatencyModel(latency_ms=10.0)
    cache = PromptCache()
    dispatcher, _ = make_dispatcher(model, max_in_flight=4, cache=cache)
    results = dispatcher.run_wave([req("p", 0), req("p", 1), req("p", 2)])
    dispatcher.close()
    assert len(set(results)) == 3
    assert model.calls == 3


def test_call_budget_is_exact_under_concurrency():
    from repro.errors import LLMBudgetExceeded
    from repro.llm.accounting import Budget

    meter = UsageMeter(budget=Budget(max_calls=3))
    dispatcher, _ = make_dispatcher(
        FixedLatencyModel(latency_ms=5.0), max_in_flight=8, meter=meter
    )
    with pytest.raises(LLMBudgetExceeded):
        dispatcher.run_wave([req(f"p{i}") for i in range(10)])
    dispatcher.close()
    # check+reserve is atomic: a budget of 3 admits exactly 3 calls no
    # matter how many were dispatched at once.
    assert meter.calls == 3


def test_put_if_absent_single_payer():
    cache = PromptCache()
    options = CompletionOptions()
    first = Completion(text="a", prompt_tokens=5, completion_tokens=5)
    stored, present = cache.put_if_absent("p", options, first)
    assert (stored.text, present) == ("a", False)
    second = Completion(text="a", prompt_tokens=5, completion_tokens=5)
    stored, present = cache.put_if_absent("p", options, second)
    assert present is True
    assert stored is first


def test_concurrent_identical_scans_cost_like_sequential(mini_world):
    """Self-join shape: two identical scans in one wave must pay once."""
    base = EngineConfig().with_(page_size=4, scan_prefetch_pages=3)
    sql = ("SELECT a.name, b.name FROM countries a JOIN countries b "
           "ON a.continent = b.continent WHERE a.population > b.population")
    seq_rows, seq_usage = run_workload_single(mini_world, sql, base, 1)
    par_rows, par_usage = run_workload_single(mini_world, sql, base, 8)
    assert par_rows == seq_rows
    assert par_usage.total_tokens == seq_usage.total_tokens
    assert par_usage.calls == seq_usage.calls


def test_makespan_divides_slots_across_parallel_branches():
    """Two branches sharing a 2-slot pool can't both claim both slots."""
    dispatcher, meter = make_dispatcher(
        FixedLatencyModel(latency_ms=100.0), max_in_flight=2
    )
    ledger = dispatcher.ledger

    def branch_work(tag):
        def thunk():
            dispatcher.run_wave([req(f"{tag}-1"), req(f"{tag}-2")])

        return thunk

    run_parallel(ledger, [branch_work("a"), branch_work("b")])
    dispatcher.close()
    # 4 calls of 100 ms on a 2-slot pool need 200 ms; each branch gets a
    # fair 1-slot share, so neither under-reports by assuming the pool.
    assert meter.wall_ms == pytest.approx(200.0)


# ---------------------------------------------------------------------------
# complete_many
# ---------------------------------------------------------------------------


def test_sequential_batch_adapter_wraps_single_call_models():
    model = FixedLatencyModel()
    adapted = as_batching(model)
    assert isinstance(adapted, SequentialBatchAdapter)
    assert adapted.model_name == "fixed"
    requests = [(f"p{i}", CompletionOptions(sample_index=i)) for i in range(3)]
    completions = adapted.complete_many(requests)
    assert [c.text for c in completions] == [f"answer:p{i}:{i}" for i in range(3)]


def test_as_batching_passes_through_native_batchers(mini_world):
    model = SimulatedLLM(mini_world, NoiseConfig(), seed=3)
    assert as_batching(model) is model


def test_simulated_complete_many_matches_sequential(mini_world):
    model = SimulatedLLM(mini_world, NoiseConfig(), seed=3)
    prompt = (
        "TASK: enumerate\nTABLE: countries(name TEXT, continent TEXT, "
        "population INTEGER, gdp REAL)\nCOLUMNS: name, continent\n"
        "AFTER_INDEX: 0\nMAX_ROWS: 5\n"
    )
    requests = [(prompt, CompletionOptions(sample_index=i)) for i in range(3)]
    batched = model.complete_many(requests)
    sequential = [model.complete(p, o) for p, o in requests]
    assert [c.text for c in batched] == [c.text for c in sequential]
    assert [c.total_tokens for c in batched] == [c.total_tokens for c in sequential]


def test_tracing_model_batches_and_records(mini_world):
    tracer = TracingModel(FixedLatencyModel())
    tracer.complete_many([("a", CompletionOptions()), ("b", CompletionOptions())])
    assert [call.prompt for call in tracer.calls] == ["a", "b"]
    assert tracer.model_name == "fixed"


# ---------------------------------------------------------------------------
# Cache model identity (satellite: key collision across models)
# ---------------------------------------------------------------------------


def test_shared_cache_partitions_by_model_name():
    class NamedModel:
        def __init__(self, name):
            self.model_name = name

        def complete(self, prompt, options=CompletionOptions()):
            return Completion(
                text=f"{self.model_name}:{prompt}",
                prompt_tokens=2,
                completion_tokens=2,
            )

    shared = PromptCache()
    first = CachingModel(NamedModel("model-a"), shared)
    second = CachingModel(NamedModel("model-b"), shared)
    assert first.complete("p").text == "model-a:p"
    # Same prompt, different model: must miss, not return model-a's answer.
    assert second.complete("p").text == "model-b:p"
    assert shared.stats.hits == 0
    assert shared.stats.misses == 2


# ---------------------------------------------------------------------------
# End-to-end determinism: concurrency changes wall-clock only
# ---------------------------------------------------------------------------

QUERIES = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT c.name, t.city FROM countries c JOIN cities t ON t.country = c.name "
    "WHERE t.is_capital = TRUE",
    "SELECT continent, COUNT(*), SUM(population) FROM countries GROUP BY continent",
    "SELECT name FROM countries ORDER BY population DESC LIMIT 3",
]


def run_workload(world, config, seed=11):
    model = SimulatedLLM(world, NoiseConfig(), seed=seed)
    engine = make_engine(model, world, config)
    rows = []
    for sql in QUERIES:
        rows.append(tuple(map(tuple, engine.execute(sql).rows)))
    return rows, engine.usage


@pytest.mark.parametrize("votes", [1, 3])
def test_parallel_results_and_cost_identical_to_sequential(mini_world, votes):
    base = EngineConfig().with_(votes=votes, page_size=4, lookup_batch_size=3)
    seq_rows, seq_usage = run_workload(mini_world, base.with_(max_in_flight=1))
    par_rows, par_usage = run_workload(mini_world, base.with_(max_in_flight=8))
    assert par_rows == seq_rows
    assert par_usage.calls == seq_usage.calls
    assert par_usage.total_tokens == seq_usage.total_tokens
    assert par_usage.latency_ms == pytest.approx(seq_usage.latency_ms)
    assert par_usage.cost_usd == pytest.approx(seq_usage.cost_usd)
    # Concurrency must actually shorten the critical path.
    assert par_usage.wall_ms < seq_usage.wall_ms


def test_sequential_wall_clock_equals_model_time(mini_world):
    _, usage = run_workload(mini_world, EngineConfig().with_(max_in_flight=1))
    assert usage.wall_ms == pytest.approx(usage.latency_ms)


def test_parallel_judge_identical(mini_world):
    config = EngineConfig().with_(enable_judge=True, enable_pushdown=False,
                                  lookup_batch_size=3)
    sql = "SELECT name FROM countries WHERE population > 50000"
    seq_rows, seq_usage = run_workload_single(mini_world, sql, config, 1)
    par_rows, par_usage = run_workload_single(mini_world, sql, config, 8)
    assert par_rows == seq_rows
    assert par_usage.total_tokens == seq_usage.total_tokens


def run_workload_single(world, sql, config, max_in_flight, seed=11):
    model = SimulatedLLM(world, NoiseConfig(), seed=seed)
    engine = make_engine(model, world, config.with_(max_in_flight=max_in_flight))
    result = engine.execute(sql)
    return tuple(map(tuple, result.rows)), engine.usage


# ---------------------------------------------------------------------------
# Scan prefetch
# ---------------------------------------------------------------------------


def scan_client_and_step(world, config, seed=11):
    from repro.core.operators import ModelClient

    model = SimulatedLLM(world, NoiseConfig(), seed=seed)
    meter = UsageMeter()
    client = ModelClient(model, meter, config)
    schema = make_country_schema()
    step = ScanStep(
        binding="countries",
        table_name="countries",
        schema=schema,
        columns=tuple(schema.column_names),
        est_rows=10.0,
    )
    virtual = VirtualTable.build(schema, row_estimate=10)
    return client, step, virtual, meter


def test_scan_prefetch_identical_rows_and_tokens(mini_world):
    base = EngineConfig().with_(page_size=3, scan_prefetch_pages=3)
    seq_client, step, virtual, seq_meter = scan_client_and_step(
        mini_world, base.with_(max_in_flight=1)
    )
    seq_table = seq_client.run_scan(step, virtual)
    seq_client.close()

    par_client, step, virtual, par_meter = scan_client_and_step(
        mini_world, base.with_(max_in_flight=8)
    )
    par_table = par_client.run_scan(step, virtual)
    stats = par_client.dispatcher.stats
    par_client.close()

    assert list(par_table.rows) == list(seq_table.rows)
    assert par_meter.total_tokens == seq_meter.total_tokens
    assert par_meter.calls == seq_meter.calls
    assert stats.speculated > 0
    assert stats.speculation_used > 0
    # Consumed speculations overlapped earlier pages: the wall clock
    # must beat the serialized page chain.
    assert par_meter.wall_ms < seq_meter.wall_ms


def test_scan_prefetch_disabled_at_sequential(mini_world):
    client, step, virtual, _ = scan_client_and_step(
        mini_world, EngineConfig().with_(page_size=3, max_in_flight=1)
    )
    client.run_scan(step, virtual)
    assert client.dispatcher.stats.speculated == 0
    client.close()


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------


def test_cli_accepts_max_in_flight():
    from repro.cli import build_engine

    engine = build_engine(
        "geography", seed=0, naive=False, gap=0.0, sampling=0.0, votes=1,
        max_in_flight=4,
    )
    assert engine.config.max_in_flight == 4
    result = engine.execute("SELECT COUNT(*) FROM countries")
    assert result.rows


def test_budget_still_enforced_under_concurrency(mini_world):
    from repro.core.engine import LLMStorageEngine
    from repro.errors import LLMBudgetExceeded
    from repro.llm.accounting import Budget

    model = SimulatedLLM(mini_world, NoiseConfig(), seed=11)
    engine = LLMStorageEngine(
        model,
        config=EngineConfig().with_(max_in_flight=8, page_size=3),
        budget=Budget(max_calls=1),
    )
    for schema in mini_world.schemas():
        engine.register_virtual_table(schema, row_estimate=10)
    with pytest.raises(LLMBudgetExceeded):
        engine.execute("SELECT name FROM countries")
        engine.execute("SELECT city FROM cities")
