"""Reference executor tests: the ground-truth SQL engine."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.relational.catalog import Catalog
from repro.relational.executor import ReferenceExecutor
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


def rows(reference, sql):
    return reference.execute(sql).rows


def test_projection_and_alias(reference):
    result = reference.execute("SELECT name AS n, population FROM countries LIMIT 1")
    assert result.schema.column_names == ["n", "population"]


def test_star_expansion(reference):
    result = reference.execute("SELECT * FROM countries LIMIT 1")
    assert result.schema.column_names == ["name", "continent", "population", "gdp"]


def test_qualified_star(reference):
    result = reference.execute(
        "SELECT c.* FROM cities c JOIN countries k ON k.name = c.country LIMIT 1"
    )
    assert result.schema.column_names == ["city", "country", "city_pop", "is_capital"]


def test_where_filters(reference):
    names = [r[0] for r in rows(reference, "SELECT name FROM countries WHERE continent = 'Asia'")]
    assert sorted(names) == ["India", "Japan"]


def test_where_null_is_not_true(mini_catalog):
    schema = TableSchema(
        name="t", columns=(Column("x", DataType.INTEGER),), primary_key=()
    )
    mini_catalog.register_table(Table(schema, [(1,), (None,), (3,)]))
    reference = ReferenceExecutor(mini_catalog)
    assert rows(reference, "SELECT x FROM t WHERE x > 1") == [(3,)]


def test_inner_join(reference):
    result = rows(
        reference,
        "SELECT c.city, k.continent FROM cities c JOIN countries k "
        "ON k.name = c.country WHERE k.continent = 'Asia' ORDER BY c.city",
    )
    assert result == [("Delhi", "Asia"), ("Osaka", "Asia"), ("Tokyo", "Asia")]


def test_left_join_null_extends(reference):
    result = rows(
        reference,
        "SELECT k.name, c.city FROM countries k LEFT JOIN cities c "
        "ON c.country = k.name AND c.is_capital = FALSE ORDER BY k.name",
    )
    by_name = {name: city for name, city in result}
    assert by_name["Iceland"] is None
    assert by_name["France"] == "Lyon"


def test_cross_join_cardinality(reference):
    result = rows(reference, "SELECT 1 FROM countries CROSS JOIN cities")
    assert len(result) == 10 * 11


def test_self_join_with_aliases(reference):
    result = rows(
        reference,
        "SELECT a.name FROM countries a JOIN countries b "
        "ON b.continent = a.continent AND b.population > a.population "
        "WHERE a.continent = 'Asia'",
    )
    assert result == [("Japan",)]


def test_duplicate_alias_raises(reference):
    with pytest.raises(ExecutionError):
        reference.execute("SELECT 1 FROM countries c JOIN cities c ON 1 = 1")


def test_group_by_with_having(reference):
    result = rows(
        reference,
        "SELECT continent, COUNT(*) AS n FROM countries "
        "GROUP BY continent HAVING COUNT(*) >= 2 ORDER BY continent",
    )
    assert result == [("Asia", 2), ("Europe", 5), ("South America", 2)]


def test_global_aggregate_without_group_by(reference):
    assert rows(reference, "SELECT COUNT(*), MIN(population) FROM countries") == [
        (10, 370)
    ]


def test_aggregate_over_empty_input(reference):
    assert rows(
        reference, "SELECT COUNT(*), SUM(population) FROM countries WHERE name = 'X'"
    ) == [(0, None)]


def test_group_by_empty_input_yields_no_groups(reference):
    assert (
        rows(
            reference,
            "SELECT continent, COUNT(*) FROM countries WHERE name = 'X' GROUP BY continent",
        )
        == []
    )


def test_count_distinct(reference):
    assert rows(reference, "SELECT COUNT(DISTINCT continent) FROM countries") == [(4,)]


def test_aggregate_in_order_by(reference):
    result = rows(
        reference,
        "SELECT continent FROM countries GROUP BY continent ORDER BY SUM(population) DESC",
    )
    assert result[0] == ("Asia",)


def test_aggregate_expression_in_select(reference):
    result = rows(
        reference,
        "SELECT MAX(population) - MIN(population) FROM countries WHERE continent = 'Asia'",
    )
    assert result == [(1408000 - 125000,)]


def test_order_by_column_direction(reference):
    result = rows(
        reference,
        "SELECT name FROM countries WHERE continent = 'Europe' ORDER BY population DESC",
    )
    assert result[0] == ("Germany",)
    assert result[-1] == ("Iceland",)


def test_order_by_position_and_alias(reference):
    by_position = rows(reference, "SELECT name, population FROM countries ORDER BY 2 DESC LIMIT 1")
    by_alias = rows(
        reference, "SELECT name, population AS p FROM countries ORDER BY p DESC LIMIT 1"
    )
    assert by_position == by_alias == [("India", 1408000)]


def test_order_by_expression(reference):
    result = rows(
        reference,
        "SELECT name FROM countries ORDER BY population * -1 LIMIT 1",
    )
    assert result == [("India",)]


def test_order_by_nulls_default_and_override(mini_catalog):
    schema = TableSchema(name="t", columns=(Column("x", DataType.INTEGER),))
    mini_catalog.register_table(Table(schema, [(2,), (None,), (1,)]))
    reference = ReferenceExecutor(mini_catalog)
    assert rows(reference, "SELECT x FROM t ORDER BY x") == [(None,), (1,), (2,)]
    assert rows(reference, "SELECT x FROM t ORDER BY x DESC") == [(2,), (1,), (None,)]
    assert rows(reference, "SELECT x FROM t ORDER BY x NULLS LAST") == [
        (1,), (2,), (None,),
    ]
    assert rows(reference, "SELECT x FROM t ORDER BY x DESC NULLS FIRST") == [
        (None,), (2,), (1,),
    ]


def test_limit_offset(reference):
    all_names = rows(reference, "SELECT name FROM countries ORDER BY name")
    page = rows(reference, "SELECT name FROM countries ORDER BY name LIMIT 3 OFFSET 2")
    assert page == all_names[2:5]


def test_distinct(reference):
    result = rows(reference, "SELECT DISTINCT continent FROM countries")
    assert len(result) == 4


def test_union_dedupes_union_all_keeps(reference):
    union = rows(
        reference,
        "SELECT continent FROM countries UNION SELECT continent FROM countries",
    )
    union_all = rows(
        reference,
        "SELECT continent FROM countries UNION ALL SELECT continent FROM countries",
    )
    assert len(union) == 4
    assert len(union_all) == 20


def test_intersect_and_except(reference):
    intersect = rows(
        reference,
        "SELECT country FROM cities INTERSECT SELECT name FROM countries",
    )
    assert len(intersect) == 9  # every city country except Iceland (no city)
    except_rows = rows(
        reference,
        "SELECT name FROM countries EXCEPT SELECT country FROM cities",
    )
    assert except_rows == [("Iceland",)]


def test_setop_arity_mismatch_raises(reference):
    with pytest.raises(ExecutionError):
        reference.execute("SELECT name, continent FROM countries UNION SELECT name FROM countries")


def test_setop_order_by_name_and_position(reference):
    result = rows(
        reference,
        "SELECT name FROM countries UNION SELECT city FROM cities ORDER BY 1 LIMIT 3",
    )
    assert result == [("Berlin",), ("Brasilia",), ("Brazil",)]


def test_uncorrelated_in_subquery(reference):
    result = rows(
        reference,
        "SELECT name FROM countries WHERE name IN "
        "(SELECT country FROM cities WHERE city_pop > 5000) ORDER BY name",
    )
    assert result == [("Chile",), ("India",), ("Japan",)]


def test_correlated_exists(reference):
    result = rows(
        reference,
        "SELECT name FROM countries k WHERE EXISTS "
        "(SELECT 1 FROM cities c WHERE c.country = k.name AND c.city_pop > 10000)",
    )
    assert sorted(result) == [("India",), ("Japan",)]


def test_correlated_scalar_subquery(reference):
    result = rows(
        reference,
        "SELECT name, (SELECT MAX(city_pop) FROM cities c WHERE c.country = k.name) "
        "FROM countries k WHERE k.name = 'Japan'",
    )
    assert result == [("Japan", 13960)]


def test_scalar_subquery_multiple_rows_raises(reference):
    with pytest.raises(ExecutionError):
        reference.execute("SELECT (SELECT name FROM countries) FROM countries")


def test_derived_table(reference):
    result = rows(
        reference,
        "SELECT d.continent, d.n FROM "
        "(SELECT continent, COUNT(*) AS n FROM countries GROUP BY continent) AS d "
        "WHERE d.n >= 2 ORDER BY d.continent",
    )
    assert result == [("Asia", 2), ("Europe", 5), ("South America", 2)]


def test_case_expression_end_to_end(reference):
    result = rows(
        reference,
        "SELECT name, CASE WHEN population > 100000 THEN 'big' ELSE 'small' END "
        "FROM countries WHERE continent = 'Asia' ORDER BY name",
    )
    assert result == [("India", "big"), ("Japan", "big")]


def test_select_without_from(reference):
    assert rows(reference, "SELECT 1 + 1, UPPER('x')") == [(2, "X")]


def test_unknown_table_raises(reference):
    with pytest.raises(CatalogError):
        reference.execute("SELECT 1 FROM missing_table")


def test_having_without_group_or_aggregate_raises(reference):
    with pytest.raises(ExecutionError):
        reference.execute("SELECT name FROM countries HAVING name = 'France'")


def test_duplicate_output_names_are_uniquified(reference):
    result = reference.execute("SELECT name, name FROM countries LIMIT 1")
    assert result.schema.column_names == ["name", "name_2"]


def test_output_type_inference(reference):
    result = reference.execute("SELECT population / 2 AS half FROM countries LIMIT 1")
    assert result.schema.columns[0].dtype is DataType.REAL


def test_boolean_select_item(reference):
    result = rows(
        reference,
        "SELECT is_capital FROM cities WHERE city = 'Lyon'",
    )
    assert result == [(False,)]
