"""Voting and validation unit tests."""

import pytest

from repro.core.consistency import majority_vote, vote_rows, vote_verdicts
from repro.core.validation import Validator
from repro.core.virtual import ColumnConstraint, VirtualTable
from repro.errors import SchemaError
from tests.conftest import make_country_schema


# -- majority vote -----------------------------------------------------------


def test_majority_simple():
    assert majority_vote([1, 2, 1]) == 1
    assert majority_vote(["a", "a", "b"]) == "a"


def test_majority_tie_prefers_first_seen():
    assert majority_vote([2, 1, 1, 2]) == 2


def test_majority_numeric_cross_type():
    assert majority_vote([1, 1.0, 2]) == 1


def test_majority_counts_null_votes():
    assert majority_vote([None, None, 5]) is None


def test_majority_empty():
    assert majority_vote([]) is None


def test_vote_rows_recovers_iid_errors():
    samples = [
        [[68000, "Europe"]],
        [[99999, "Europe"]],
        [[68000, "Asia"]],
    ]
    merged = vote_rows(samples)
    assert merged == [[68000, "Europe"]]


def test_vote_rows_majority_unknown_drops_entity():
    samples = [[None], [None], [[1]]]
    assert vote_rows(samples) == [None]


def test_vote_rows_known_majority_keeps_entity():
    samples = [[[1]], [[1]], [None]]
    assert vote_rows(samples) == [[1]]


def test_vote_rows_empty():
    assert vote_rows([]) == []


def test_vote_verdicts():
    samples = [
        [True, False, None],
        [True, True, None],
        [False, False, None],
    ]
    assert vote_verdicts(samples) == [True, False, None]


def test_vote_verdicts_tie_is_unknown():
    assert vote_verdicts([[True], [False]]) == [None]


# -- constraints and validation -----------------------------------------------


def test_constraint_checks():
    constraint = ColumnConstraint(min_value=0, max_value=100)
    assert constraint.check(50)
    assert not constraint.check(-1)
    assert not constraint.check(101)
    assert constraint.check(None)
    categorical = ColumnConstraint(allowed_values=frozenset({"a", "b"}))
    assert categorical.check("a")
    assert not categorical.check("c")
    text = ColumnConstraint(max_length=3)
    assert text.check("abc")
    assert not text.check("abcd")


def make_virtual():
    return VirtualTable.build(
        make_country_schema(),
        row_estimate=10,
        constraints={"population": ColumnConstraint(min_value=0, max_value=2_000_000)},
    )


def test_virtual_table_requires_primary_key():
    from repro.relational.schema import Column, TableSchema
    from repro.relational.types import DataType

    keyless = TableSchema(name="k", columns=(Column("x", DataType.INTEGER),))
    with pytest.raises(SchemaError):
        VirtualTable.build(keyless)


def test_virtual_table_rejects_unknown_constraint_column():
    with pytest.raises(SchemaError):
        VirtualTable.build(
            make_country_schema(),
            constraints={"nope": ColumnConstraint(min_value=0)},
        )


def test_validator_nulls_implausible_values():
    validator = Validator(enabled=True)
    virtual = make_virtual()
    assert validator.validate_cell(100, virtual, "population") == 100
    assert validator.validate_cell(99_000_000, virtual, "population") is None
    assert validator.report.nulled_cells == 1
    assert validator.report.checked_cells == 2


def test_validator_disabled_passes_everything():
    validator = Validator(enabled=False)
    virtual = make_virtual()
    assert validator.validate_cell(99_000_000, virtual, "population") == 99_000_000
    assert validator.report.checked_cells == 0


def test_validator_row_helper():
    validator = Validator(enabled=True)
    virtual = make_virtual()
    row = validator.validate_row(
        ["France", 99_000_000], virtual, ["name", "population"]
    )
    assert row == ["France", None]


def test_unconstrained_column_always_passes():
    validator = Validator(enabled=True)
    virtual = make_virtual()
    assert validator.validate_cell("anything", virtual, "continent") == "anything"
