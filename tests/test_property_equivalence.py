"""Property tests of the central invariant.

With a zero-noise model (no gaps, no sampling errors, no omissions, no
hallucinations, no truncation) the decomposed engine must return exactly
the rows that the reference executor produces over the ground truth —
for randomly generated predicates, projections and configurations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.materialized import MaterializedEngine
from repro.config import EngineConfig
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World
from repro.relational.table import Table
from tests.conftest import (
    CITY_ROWS,
    COUNTRY_ROWS,
    make_city_schema,
    make_country_schema,
    make_engine,
)

_WORLD = World(
    "prop", [Table(make_country_schema(), COUNTRY_ROWS), Table(make_city_schema(), CITY_ROWS)]
)
_ORACLE = MaterializedEngine(_WORLD)
_MODEL = SimulatedLLM(_WORLD, NoiseConfig.perfect(), seed=1)

_COMPARISONS = ["=", "<>", "<", "<=", ">", ">="]
_CONTINENTS = ["Europe", "Asia", "Africa", "South America", "Oceania"]


@st.composite
def country_predicates(draw):
    """A random single-table predicate over the countries schema."""
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        op = draw(st.sampled_from(_COMPARISONS))
        value = draw(st.integers(min_value=0, max_value=2_000_000))
        return f"population {op} {value}"
    if kind == 1:
        continent = draw(st.sampled_from(_CONTINENTS))
        return f"continent = '{continent}'"
    if kind == 2:
        low = draw(st.integers(min_value=0, max_value=5000))
        high = draw(st.integers(min_value=0, max_value=5000))
        return f"gdp BETWEEN {min(low, high)} AND {max(low, high)}"
    if kind == 3:
        prefix = draw(st.sampled_from(["F", "I", "J", "K", "B", "X"]))
        return f"name LIKE '{prefix}%'"
    if kind == 4:
        picks = draw(
            st.lists(st.sampled_from(_CONTINENTS), min_size=1, max_size=3, unique=True)
        )
        quoted = ", ".join(f"'{c}'" for c in picks)
        return f"continent IN ({quoted})"
    return "gdp IS NOT NULL"


@st.composite
def compound_predicates(draw):
    left = draw(country_predicates())
    if draw(st.booleans()):
        connective = draw(st.sampled_from(["AND", "OR"]))
        right = draw(country_predicates())
        maybe_not = "NOT " if draw(st.booleans()) else ""
        return f"{left} {connective} {maybe_not}({right})"
    return left


@settings(max_examples=60, deadline=None)
@given(predicate=compound_predicates())
def test_filter_equivalence_random_predicates(predicate):
    sql = f"SELECT name, population FROM countries WHERE {predicate}"
    truth = sorted(_ORACLE.execute(sql).rows)
    engine = make_engine(_MODEL, _WORLD)
    assert sorted(engine.execute(sql).rows) == truth


@settings(max_examples=30, deadline=None)
@given(
    predicate=country_predicates(),
    columns=st.lists(
        st.sampled_from(["name", "continent", "population", "gdp"]),
        min_size=1, max_size=3, unique=True,
    ),
    page_size=st.integers(min_value=1, max_value=7),
)
def test_projection_and_page_size_equivalence(predicate, columns, page_size):
    sql = f"SELECT {', '.join(columns)} FROM countries WHERE {predicate}"
    truth = sorted(_ORACLE.execute(sql).rows, key=repr)
    engine = make_engine(_MODEL, _WORLD, EngineConfig().with_(page_size=page_size))
    assert sorted(engine.execute(sql).rows, key=repr) == truth


@settings(max_examples=30, deadline=None)
@given(
    predicate=country_predicates(),
    limit=st.integers(min_value=1, max_value=12),
)
def test_aggregate_equivalence_random_predicates(predicate, limit):
    sql = (
        "SELECT continent, COUNT(*), SUM(population) FROM countries "
        f"WHERE {predicate} GROUP BY continent"
    )
    truth = sorted(_ORACLE.execute(sql).rows, key=repr)
    engine = make_engine(_MODEL, _WORLD)
    assert sorted(engine.execute(sql).rows, key=repr) == truth


@settings(max_examples=30, deadline=None)
@given(
    threshold=st.integers(min_value=0, max_value=15000),
    use_lookup=st.booleans(),
)
def test_join_equivalence_random_thresholds(threshold, use_lookup):
    sql = (
        "SELECT c.city, k.continent FROM cities c JOIN countries k "
        f"ON k.name = c.country WHERE c.city_pop > {threshold}"
    )
    truth = sorted(_ORACLE.execute(sql).rows)
    config = EngineConfig().with_(enable_lookup_join=use_lookup)
    engine = make_engine(_MODEL, _WORLD, config)
    assert sorted(engine.execute(sql).rows) == truth


@settings(max_examples=20, deadline=None)
@given(keys=st.lists(
    st.sampled_from([row[0] for row in COUNTRY_ROWS] + ["Atlantis", "Mu"]),
    min_size=1, max_size=5, unique=True,
))
def test_point_lookup_equivalence(keys):
    quoted = ", ".join(f"'{k}'" for k in keys)
    sql = f"SELECT name, gdp FROM countries WHERE name IN ({quoted})"
    truth = sorted(_ORACLE.execute(sql).rows)
    engine = make_engine(_MODEL, _WORLD)
    assert sorted(engine.execute(sql).rows) == truth
