"""Transport conformance: every registered transport, offline mode.

Each registered transport is built with ``offline=True`` and the shared
simulated model as fallback, then held to one contract: completions,
token counts, latencies, and identity are byte-identical to calling the
in-process model directly — across the sync, async, and streaming
surfaces.  This is the invariant that makes ``--transport openai`` on a
machine without credentials indistinguishable from the plain engine.

Online wire paths are exercised against a monkeypatched
``_http_post_json`` so no test ever opens a socket.  The whole module
must pass under ``-W error::RuntimeWarning`` (CI runs it that way): an
un-awaited coroutine anywhere in the transport stack is a failure.
"""

import asyncio
import math

import pytest

import repro.llm.transport as transport_mod
from repro.config import EngineConfig
from repro.errors import ConfigError, TransportError
from repro.llm.interface import CompletionOptions
from repro.llm.simulated import LatencyModel
from repro.llm.transport import (
    LlamaCppTransport,
    OpenAITransport,
    SimulatedTransport,
    Transport,
    as_transport,
    available_transports,
    build_transport,
    ensure_latency,
    register_transport,
    transport_from_config,
    transport_label,
)
from tests.conftest import make_engine

PROMPTS = [
    "What is the capital of France?",
    "List three composers.",
    "TASK: nonsense probe",
]


def build_offline(name, model):
    return build_transport(name, fallback_model=model, offline=True)


# ---------------------------------------------------------------------
# Conformance: every registered transport, offline
# ---------------------------------------------------------------------


def test_registry_lists_all_builtins():
    names = available_transports()
    assert "simulated" in names
    assert "openai" in names
    assert "llamacpp" in names


@pytest.mark.parametrize("name", available_transports())
def test_offline_completions_match_fallback(name, perfect_model):
    transport = build_offline(name, perfect_model)
    for prompt in PROMPTS:
        direct = ensure_latency(
            perfect_model.complete(prompt), transport._latency_model
        )
        via = transport.complete(prompt)
        assert via == direct


@pytest.mark.parametrize("name", available_transports())
def test_offline_model_name_is_fallback_identity(name, perfect_model):
    transport = build_offline(name, perfect_model)
    assert transport.model_name == perfect_model.model_name


@pytest.mark.parametrize("name", available_transports())
def test_describe_names_the_transport(name, perfect_model):
    transport = build_offline(name, perfect_model)
    assert name in transport.describe()
    assert name in transport_label(transport)


@pytest.mark.parametrize("name", available_transports())
def test_latency_always_finite_positive(name, perfect_model):
    transport = build_offline(name, perfect_model)
    for prompt in PROMPTS:
        latency = transport.complete(prompt).latency_ms
        assert math.isfinite(latency) and latency > 0.0


@pytest.mark.parametrize("name", available_transports())
def test_complete_many_preserves_request_order(name, perfect_model):
    transport = build_offline(name, perfect_model)
    requests = [(prompt, CompletionOptions()) for prompt in PROMPTS]
    batch = transport.complete_many(requests)
    assert len(batch) == len(PROMPTS)
    for (prompt, options), completion in zip(requests, batch):
        assert completion == transport.complete(prompt, options)
    assert transport.complete_many([]) == []
    single = transport.complete_many(requests[:1])
    assert single == batch[:1]


@pytest.mark.parametrize("name", available_transports())
def test_async_surface_matches_sync(name, perfect_model):
    transport = build_offline(name, perfect_model)

    async def drive():
        one = await transport.complete_async(PROMPTS[0])
        many = await transport.complete_many_async(
            [(prompt, CompletionOptions()) for prompt in PROMPTS]
        )
        return one, many

    one, many = asyncio.run(drive())
    assert one == transport.complete(PROMPTS[0])
    assert many == transport.complete_many(
        [(prompt, CompletionOptions()) for prompt in PROMPTS]
    )


@pytest.mark.parametrize("name", available_transports())
def test_stream_yields_every_request_exactly_once(name, perfect_model):
    transport = build_offline(name, perfect_model)
    requests = [(prompt, CompletionOptions()) for prompt in PROMPTS]
    seen = dict(transport.open_completion_stream(requests))
    assert sorted(seen) == list(range(len(PROMPTS)))
    for index, (prompt, options) in enumerate(requests):
        assert seen[index] == transport.complete(prompt, options)


@pytest.mark.parametrize("name", available_transports())
def test_engine_results_identical_through_any_transport(
    name, perfect_model, mini_world
):
    sql = "SELECT name, population FROM countries WHERE continent = 'Europe'"
    plain = make_engine(perfect_model, mini_world).execute(sql)
    transported = make_engine(
        build_offline(name, perfect_model), mini_world
    ).execute(sql)
    assert transported.rows == plain.rows
    assert transported.render() == plain.render()


@pytest.mark.parametrize("name", available_transports())
def test_sample_index_reaches_the_fallback(name, perfect_model):
    transport = build_offline(name, perfect_model)
    prompt = PROMPTS[0]
    base = transport.complete(prompt, CompletionOptions(sample_index=0))
    again = transport.complete(prompt, CompletionOptions(sample_index=0))
    assert base == again  # deterministic per (prompt, sample_index)


# ---------------------------------------------------------------------
# ensure_latency (the S4 accounting guard)
# ---------------------------------------------------------------------


@pytest.mark.parametrize("broken", [0.0, -3.0, float("nan"), float("inf")])
def test_ensure_latency_synthesizes_missing_latency(broken):
    from repro.llm.interface import Completion

    model = LatencyModel()
    completion = Completion(
        text="x", prompt_tokens=10, completion_tokens=4, latency_ms=broken
    )
    fixed = ensure_latency(completion, model)
    assert math.isfinite(fixed.latency_ms) and fixed.latency_ms > 0.0
    assert fixed.latency_ms == model.latency(10, 4)
    # Everything but the latency is untouched.
    assert (fixed.text, fixed.prompt_tokens, fixed.completion_tokens) == (
        "x",
        10,
        4,
    )


def test_ensure_latency_preserves_reported_latency():
    from repro.llm.interface import Completion

    completion = Completion(
        text="x", prompt_tokens=1, completion_tokens=1, latency_ms=17.5
    )
    assert ensure_latency(completion, LatencyModel()) is completion


def test_offline_usage_matches_in_process_usage(perfect_model, mini_world):
    """Offline fallback keeps UsageSnapshot accounting identical (S4)."""
    sql = "SELECT population FROM countries WHERE name = 'Japan'"
    plain = make_engine(perfect_model, mini_world)
    plain.execute(sql)
    wrapped = make_engine(
        build_offline("openai", perfect_model), mini_world
    )
    wrapped.execute(sql)
    a, b = plain.usage, wrapped.usage
    assert (a.calls, a.prompt_tokens, a.completion_tokens) == (
        b.calls,
        b.prompt_tokens,
        b.completion_tokens,
    )
    assert a.cost_usd == b.cost_usd
    assert a.latency_ms == b.latency_ms
    assert math.isfinite(b.wall_ms) and b.wall_ms > 0.0
    # The wrapped engine's usage line names its transport; plain doesn't.
    assert a.transport is None
    assert b.transport == "openai (offline)"
    assert "transport: openai (offline)" in b.render()
    assert "transport:" not in a.render()


# ---------------------------------------------------------------------
# Online wire paths (monkeypatched; no sockets)
# ---------------------------------------------------------------------


def test_openai_http_parses_usage_and_latency(monkeypatch):
    calls = {}

    def fake_post(url, payload, headers=None, timeout_s=30.0):
        calls["url"] = url
        calls["payload"] = payload
        calls["headers"] = headers
        return (
            {
                "choices": [
                    {
                        "message": {"content": "Paris"},
                        "finish_reason": "stop",
                    }
                ],
                "usage": {"prompt_tokens": 12, "completion_tokens": 3},
            },
            42.0,
        )

    monkeypatch.setattr(transport_mod, "_http_post_json", fake_post)
    monkeypatch.setattr(transport_mod, "_openai_client", lambda *a: None)
    transport = OpenAITransport(api_key="sk-test", model="gpt-test")
    assert not transport.offline
    completion = transport.complete("capital of France?")
    assert completion.text == "Paris"
    assert completion.prompt_tokens == 12
    assert completion.completion_tokens == 3
    assert completion.latency_ms == 42.0
    assert not completion.truncated
    assert completion.model_name == "openai/gpt-test"
    assert calls["url"].endswith("/chat/completions")
    assert calls["headers"]["Authorization"] == "Bearer sk-test"
    assert calls["payload"]["model"] == "gpt-test"


def test_openai_http_synthesizes_latency_and_tokens(monkeypatch):
    def fake_post(url, payload, headers=None, timeout_s=30.0):
        # No usage block, no timing: the transport must fall back to
        # count_tokens and ensure_latency, never to zero/NaN.
        return (
            {"choices": [{"message": {"content": "out"}}]},
            0.0,
        )

    monkeypatch.setattr(transport_mod, "_http_post_json", fake_post)
    monkeypatch.setattr(transport_mod, "_openai_client", lambda *a: None)
    transport = OpenAITransport(api_key="sk-test")
    completion = transport.complete("a prompt")
    assert completion.prompt_tokens > 0
    assert completion.completion_tokens > 0
    assert math.isfinite(completion.latency_ms) and completion.latency_ms > 0


def test_openai_http_truncation_flag(monkeypatch):
    def fake_post(url, payload, headers=None, timeout_s=30.0):
        return (
            {
                "choices": [
                    {"message": {"content": "cut"}, "finish_reason": "length"}
                ]
            },
            5.0,
        )

    monkeypatch.setattr(transport_mod, "_http_post_json", fake_post)
    monkeypatch.setattr(transport_mod, "_openai_client", lambda *a: None)
    assert OpenAITransport(api_key="k").complete("p").truncated


def test_openai_http_malformed_body_raises(monkeypatch):
    monkeypatch.setattr(
        transport_mod, "_http_post_json", lambda *a, **k: ({"oops": 1}, 1.0)
    )
    monkeypatch.setattr(transport_mod, "_openai_client", lambda *a: None)
    with pytest.raises(TransportError):
        OpenAITransport(api_key="k").complete("p")


def test_openai_http_network_error_raises(monkeypatch):
    def boom(*args, **kwargs):
        raise OSError("connection refused")

    monkeypatch.setattr(transport_mod, "_http_post_json", boom)
    monkeypatch.setattr(transport_mod, "_openai_client", lambda *a: None)
    with pytest.raises(TransportError):
        OpenAITransport(api_key="k").complete("p")


def test_llamacpp_parses_server_timings(monkeypatch):
    calls = {}

    def fake_post(url, payload, headers=None, timeout_s=30.0):
        calls["url"] = url
        calls["payload"] = payload
        return (
            {
                "content": "predicted text",
                "tokens_evaluated": 20,
                "tokens_predicted": 6,
                "timings": {"prompt_ms": 30.0, "predicted_ms": 70.0},
                "stop_type": "eos",
            },
            999.0,
        )

    monkeypatch.setattr(transport_mod, "_http_post_json", fake_post)
    transport = LlamaCppTransport(url="http://localhost:8080")
    assert not transport.offline
    completion = transport.complete(
        "a prompt", CompletionOptions(sample_index=3)
    )
    assert completion.text == "predicted text"
    assert completion.prompt_tokens == 20
    assert completion.completion_tokens == 6
    # Server timings win over our wall measurement.
    assert completion.latency_ms == 100.0
    assert not completion.truncated
    assert calls["url"] == "http://localhost:8080/completion"
    assert calls["payload"]["seed"] == 3
    assert calls["payload"]["cache_prompt"] is True


def test_llamacpp_truncation_and_fallback_latency(monkeypatch):
    monkeypatch.setattr(
        transport_mod,
        "_http_post_json",
        lambda *a, **k: ({"content": "c", "stop_type": "limit"}, 33.0),
    )
    completion = LlamaCppTransport(url="http://h").complete("p")
    assert completion.truncated
    assert completion.latency_ms == 33.0  # measured wall, no timings


def test_llamacpp_malformed_body_raises(monkeypatch):
    monkeypatch.setattr(
        transport_mod, "_http_post_json", lambda *a, **k: ({"no": "content"}, 1.0)
    )
    with pytest.raises(TransportError):
        LlamaCppTransport(url="http://h").complete("p")


# ---------------------------------------------------------------------
# Registry & construction errors
# ---------------------------------------------------------------------


def test_unknown_transport_rejected(perfect_model):
    with pytest.raises(ConfigError, match="unknown transport"):
        build_transport("carrier-pigeon", fallback_model=perfect_model)


def test_offline_without_fallback_rejected():
    with pytest.raises(ConfigError):
        OpenAITransport(api_key=None, offline=True)
    with pytest.raises(ConfigError):
        LlamaCppTransport(url=None, offline=True)
    with pytest.raises(ConfigError):
        SimulatedTransport(None)


def test_register_transport_decorator(perfect_model):
    @register_transport("test-echo")
    class EchoTransport(SimulatedTransport):
        name = "test-echo"

        def __init__(self, fallback_model=None, **_ignored):
            super().__init__(fallback_model)

    try:
        assert "test-echo" in available_transports()
        built = build_transport("test-echo", fallback_model=perfect_model)
        assert isinstance(built, EchoTransport)
    finally:
        del transport_mod._REGISTRY["test-echo"]
    assert "test-echo" not in available_transports()


def test_transport_from_config(perfect_model):
    config = EngineConfig().with_(transport="llamacpp")
    transport = transport_from_config(config, fallback_model=perfect_model)
    assert transport.name == "llamacpp"
    assert transport.offline  # no URL configured in tests


def test_config_rejects_unknown_transport():
    with pytest.raises(ConfigError):
        EngineConfig(transport="smoke-signals")


def test_as_transport_idempotent(perfect_model):
    transport = as_transport(perfect_model)
    assert isinstance(transport, SimulatedTransport)
    assert as_transport(transport) is transport
    assert transport_label(perfect_model) is None
    assert transport_label(transport) == "simulated"


def test_base_transport_is_abstract():
    transport = Transport()
    with pytest.raises(NotImplementedError):
        _ = transport.model_name
    with pytest.raises(NotImplementedError):
        transport.complete("p")
