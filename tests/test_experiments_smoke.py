"""Smoke tests: experiment runners and the run_all CLI (quick sizes)."""

import os

import pytest

from repro.eval.experiments import (
    EXPERIMENTS,
    figure3_truncation,
    figure5_voting,
    table1_workloads,
)
from repro.eval.run_all import main


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4",
        "figure3", "figure4", "figure5", "figure6", "figure7", "figure8",
    }


def test_table1_census_shape():
    table = table1_workloads(quick=True)
    assert table.columns[0] == "world"
    worlds = table.column_values("world")
    assert worlds == ["geography", "movies", "company"]


def test_figure3_direct_recall_collapses():
    series = figure3_truncation(quick=True)
    direct = series.column_values("direct recall")
    decomposed = series.column_values("decomposed recall")
    assert direct[-1] < 0.9, "direct should truncate at the largest size"
    assert all(value == 1.0 for value in decomposed)


def test_figure5_voting_monotone_cost():
    series = figure5_voting(quick=True)
    calls = series.column_values("calls")
    assert calls == sorted(calls)
    f1 = series.column_values("F1")
    assert f1[-1] >= f1[0]


def test_run_all_cli_selects_and_saves(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["--quick", "--only", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert os.path.exists(tmp_path / "table1_workloads.txt")


def test_run_all_cli_rejects_unknown(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    with pytest.raises(SystemExit):
        main(["--only", "nope"])
