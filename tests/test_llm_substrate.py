"""Tests for the LLM substrate: tokenizer, accounting, cache, noise, world."""

import pytest

from repro.errors import LLMBudgetExceeded, WorkloadError
from repro.llm.accounting import Budget, MeteredModel, PriceModel, UsageMeter
from repro.llm.cache import CachingModel, PromptCache
from repro.llm.interface import Completion, CompletionOptions, TracingModel
from repro.llm.noise import (
    NoiseConfig,
    apply_format_noise,
    confabulate,
    stable_hash,
    uniform01,
)
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.llm.world import World
from repro.relational.table import Table


# -- tokenizer -------------------------------------------------------------------


def test_count_tokens_empty():
    assert count_tokens("") == 0


def test_count_tokens_words_and_punct():
    assert count_tokens("cat") == 1          # 3 chars -> 1 token
    assert count_tokens("elephant") == 2     # 8 chars -> 2 tokens
    assert count_tokens("a, b") == 3         # a + comma + b


def test_count_tokens_monotone_in_length():
    short = count_tokens("alpha beta")
    long = count_tokens("alpha beta gamma delta epsilon")
    assert long > short


def test_truncate_respects_budget():
    text = "one two three four five six seven eight"
    cut = truncate_to_tokens(text, 3)
    assert count_tokens(cut) <= 3
    assert text.startswith(cut.rstrip())


def test_truncate_no_op_when_within_budget():
    assert truncate_to_tokens("short", 100) == "short"


def test_truncate_zero_budget():
    assert truncate_to_tokens("anything", 0) == ""


# -- accounting ------------------------------------------------------------------


def _completion(prompt_tokens=10, completion_tokens=5):
    return Completion(
        text="x", prompt_tokens=prompt_tokens, completion_tokens=completion_tokens,
        latency_ms=100.0,
    )


def test_meter_accumulates_and_snapshots():
    meter = UsageMeter()
    meter.record(_completion())
    meter.record(_completion(20, 10))
    snapshot = meter.snapshot()
    assert snapshot.calls == 2
    assert snapshot.prompt_tokens == 30
    assert snapshot.completion_tokens == 15
    assert snapshot.total_tokens == 45
    assert snapshot.latency_ms == 200.0


def test_snapshot_minus_and_plus():
    meter = UsageMeter()
    meter.record(_completion())
    first = meter.snapshot()
    meter.record(_completion())
    diff = meter.snapshot().minus(first)
    assert diff.calls == 1
    combined = first.plus(diff)
    assert combined.calls == 2


def test_price_model_cost():
    price = PriceModel(usd_per_1k_prompt_tokens=1.0, usd_per_1k_completion_tokens=2.0)
    assert price.cost(1000, 500) == pytest.approx(2.0)


def test_budget_enforced():
    meter = UsageMeter(budget=Budget(max_calls=1))

    class Model:
        def complete(self, prompt, options=None):
            return _completion()

    metered = MeteredModel(Model(), meter)
    metered.complete("p")
    with pytest.raises(LLMBudgetExceeded):
        metered.complete("p")


def test_token_budget_enforced():
    meter = UsageMeter(budget=Budget(max_total_tokens=12))
    meter.record(_completion())  # 15 tokens
    with pytest.raises(LLMBudgetExceeded):
        meter.check_budget()


# -- cache -----------------------------------------------------------------------


class CountingModel:
    def __init__(self):
        self.calls = 0

    def complete(self, prompt, options=CompletionOptions()):
        self.calls += 1
        return Completion(
            text=f"answer-{prompt}", prompt_tokens=5, completion_tokens=5
        )


def test_cache_hit_returns_zero_cost():
    inner = CountingModel()
    cached = CachingModel(inner)
    first = cached.complete("p")
    second = cached.complete("p")
    assert inner.calls == 1
    assert first.text == second.text
    assert second.prompt_tokens == 0 and second.completion_tokens == 0
    assert cached.cache.stats.hits == 1


def test_cache_key_includes_options():
    inner = CountingModel()
    cached = CachingModel(inner)
    cached.complete("p", CompletionOptions(sample_index=0))
    cached.complete("p", CompletionOptions(sample_index=1))
    assert inner.calls == 2


def test_cache_lru_eviction():
    cache = PromptCache(max_entries=2)
    model = CachingModel(CountingModel(), cache)
    model.complete("a")
    model.complete("b")
    model.complete("c")
    assert cache.stats.evictions == 1
    model.complete("a")  # evicted -> miss
    assert cache.stats.misses == 4


def test_tracing_model_records():
    tracer = TracingModel(CountingModel())
    tracer.complete("hello")
    assert len(tracer.calls) == 1
    assert tracer.calls[0].prompt == "hello"


# -- noise -----------------------------------------------------------------------


def test_stable_hash_deterministic_and_sensitive():
    assert stable_hash("a", 1) == stable_hash("a", 1)
    assert stable_hash("a", 1) != stable_hash("a", 2)
    assert stable_hash("a", 1) != stable_hash("a", "1")


def test_uniform01_range():
    values = [uniform01("k", i) for i in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)
    mean = sum(values) / len(values)
    assert 0.4 < mean < 0.6


def test_confabulate_changes_value():
    wrong = confabulate(100, [], 0.35, "seed", "addr")
    assert wrong != 100
    assert isinstance(wrong, int)
    assert confabulate(True, [], 0.0, "s") is False
    text_wrong = confabulate("France", ["France", "Spain", "Italy"], 0.0, "s", 1)
    assert text_wrong in ("Spain", "Italy")


def test_confabulate_deterministic():
    assert confabulate(100, [], 0.35, "s", 1) == confabulate(100, [], 0.35, "s", 1)


def test_format_noise_rate_zero_is_identity():
    assert apply_format_noise("line", 0.0, "s") == "line"


def test_format_noise_applied_sometimes():
    decorated = [
        apply_format_noise("line", 1.0, "s", i) != "line" for i in range(20)
    ]
    assert all(decorated)


def test_noise_scaled_and_perfect():
    noise = NoiseConfig().scaled(2.0)
    assert noise.knowledge_gap_rate == pytest.approx(0.10)
    perfect = NoiseConfig.perfect()
    assert perfect.knowledge_gap_rate == 0.0
    assert perfect.aggregate_error_rate == 0.0


# -- world -----------------------------------------------------------------------


def test_world_requires_primary_keys(country_table):
    from repro.relational.schema import Column, TableSchema
    from repro.relational.types import DataType

    keyless = TableSchema(name="k", columns=(Column("x", DataType.INTEGER),))
    with pytest.raises(WorkloadError):
        World("w", [Table(keyless, [(1,)])])


def test_world_fact_addressing(mini_world):
    assert mini_world.fact("countries", ("France",), "population") == 68000
    with pytest.raises(WorkloadError):
        mini_world.fact("countries", ("Atlantis",), "population")


def test_world_column_domain_sorted_distinct(mini_world):
    domain = mini_world.column_domain("countries", "continent")
    assert domain == ["Africa", "Asia", "Europe", "South America"]


def test_world_summary_mentions_tables(mini_world):
    summary = mini_world.render_summary()
    assert "countries" in summary and "cities" in summary


def test_world_executor_runs(mini_world):
    result = mini_world.executor().execute("SELECT COUNT(*) FROM cities")
    assert result.rows == [(11,)]
