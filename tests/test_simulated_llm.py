"""Tests for the simulated language model's protocol behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.interface import CompletionOptions
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM, _query_complexity
from repro.prompts.direct import DirectRequest, build_direct_prompt
from repro.prompts.enumerate import EnumerateRequest, build_enumerate_prompt
from repro.prompts.lookup import LookupRequest, build_lookup_prompt
from repro.prompts.parsing import (
    parse_direct_completion,
    parse_enumerate_completion,
    parse_judge_completion,
    parse_lookup_completion,
)
from repro.prompts.predicate import JudgeRequest, build_judge_prompt
from repro.relational.types import DataType
from repro.sql.parser import parse
from tests.conftest import make_country_schema

COUNTRY = make_country_schema()
NAME_POP = [DataType.TEXT, DataType.INTEGER]


def enumerate_all(model, condition=None, columns=("name", "population"), page=50):
    request = EnumerateRequest(
        schema=COUNTRY, columns=tuple(columns), condition_sql=condition, max_rows=page
    )
    completion = model.complete(build_enumerate_prompt(request))
    return parse_enumerate_completion(
        completion.text, [COUNTRY.column(c).dtype for c in columns]
    )


def test_perfect_enumeration_matches_world(perfect_model, mini_world):
    page = enumerate_all(perfect_model)
    truth = {
        (row[0], row[2]) for row in mini_world.table("countries").rows
    }
    assert {tuple(r) for r in page.rows} == truth
    assert page.complete and not page.has_more


def test_enumeration_applies_condition(perfect_model):
    page = enumerate_all(perfect_model, "continent = 'Europe' AND population > 1000")
    names = {row[0] for row in page.rows}
    assert names == {"France", "Germany", "Italy", "Norway"}


def test_enumeration_pagination_is_consistent(perfect_model):
    collected = []
    after = 0
    for _ in range(10):
        request = EnumerateRequest(
            schema=COUNTRY, columns=("name",), after_index=after, max_rows=3
        )
        completion = perfect_model.complete(build_enumerate_prompt(request))
        page = parse_enumerate_completion(completion.text, [DataType.TEXT])
        collected.extend(row[0] for row in page.rows)
        after += len(page.rows)
        if not page.has_more:
            break
    assert len(collected) == 10
    assert len(set(collected)) == 10  # no duplicates across pages


def test_enumeration_order_hint(perfect_model):
    request = EnumerateRequest(
        schema=COUNTRY, columns=("name", "population"),
        order=("population", True), max_rows=3,
    )
    completion = perfect_model.complete(build_enumerate_prompt(request))
    page = parse_enumerate_completion(completion.text, NAME_POP)
    populations = [row[1] for row in page.rows]
    assert populations == sorted(populations, reverse=True)
    assert page.rows[0][0] == "India"


def test_completion_truncation_sets_flag(perfect_model):
    request = EnumerateRequest(schema=COUNTRY, columns=("name", "population"), max_rows=50)
    completion = perfect_model.complete(
        build_enumerate_prompt(request), CompletionOptions(max_tokens=10)
    )
    assert completion.truncated
    assert completion.completion_tokens == 10


def test_lookup_known_and_unknown(perfect_model):
    request = LookupRequest(
        schema=COUNTRY, key_columns=("name",), attributes=("population", "continent"),
        entities=(("France",), ("Atlantis",)),
    )
    completion = perfect_model.complete(build_lookup_prompt(request))
    slots = parse_lookup_completion(completion.text, 2, NAME_POP[::-1][:2])
    slots = parse_lookup_completion(
        completion.text, 2, [DataType.INTEGER, DataType.TEXT]
    )
    assert slots[0] == [68000, "Europe"]
    assert slots[1] is None


def test_lookup_key_matching_is_case_insensitive(perfect_model):
    request = LookupRequest(
        schema=COUNTRY, key_columns=("name",), attributes=("continent",),
        entities=(("france",),),
    )
    completion = perfect_model.complete(build_lookup_prompt(request))
    slots = parse_lookup_completion(completion.text, 1, [DataType.TEXT])
    assert slots[0] == ["Europe"]


def test_judge_verdicts(perfect_model):
    request = JudgeRequest(
        schema=COUNTRY, key_columns=("name",),
        condition_sql="population > 100000",
        entities=(("Japan",), ("Iceland",), ("Nowhere",)),
    )
    completion = perfect_model.complete(build_judge_prompt(request))
    verdicts = parse_judge_completion(completion.text, 3)
    assert verdicts == [True, False, None]


def test_direct_sql_execution(perfect_model):
    request = DirectRequest(
        schemas=(COUNTRY,),
        sql="SELECT continent, COUNT(*) AS n FROM countries GROUP BY continent ORDER BY continent",
    )
    completion = perfect_model.complete(build_direct_prompt(request))
    answer = parse_direct_completion(completion.text, [DataType.TEXT, DataType.INTEGER])
    assert answer.complete
    assert ("Europe", 5) in {tuple(r) for r in answer.rows}


def test_direct_sql_unknown_table(perfect_model):
    request = DirectRequest(schemas=(), sql="SELECT * FROM unicorns")
    completion = perfect_model.complete(build_direct_prompt(request))
    assert "unicorns" in completion.text


def test_unparseable_prompt_gets_text_reply(perfect_model):
    completion = perfect_model.complete("what is the capital of France?")
    assert completion.text  # some textual answer, never an exception


def test_determinism_same_seed(mini_world):
    first = SimulatedLLM(mini_world, NoiseConfig(), seed=3)
    second = SimulatedLLM(mini_world, NoiseConfig(), seed=3)
    prompt = build_enumerate_prompt(
        EnumerateRequest(schema=COUNTRY, columns=("name", "population"), max_rows=50)
    )
    assert first.complete(prompt).text == second.complete(prompt).text


def test_different_seeds_differ(mini_world):
    prompt = build_enumerate_prompt(
        EnumerateRequest(schema=COUNTRY, columns=("name", "population"), max_rows=50)
    )
    texts = {
        SimulatedLLM(mini_world, NoiseConfig(), seed=s).complete(prompt).text
        for s in range(6)
    }
    assert len(texts) > 1


def test_knowledge_gap_is_stable_across_samples(mini_world):
    model = SimulatedLLM(
        mini_world, NoiseConfig.perfect().with_gap(0.5), seed=9
    )
    request = LookupRequest(
        schema=COUNTRY, key_columns=("name",), attributes=("population",),
        entities=(("France",), ("Germany",), ("Japan",), ("Kenya",)),
    )
    prompt = build_lookup_prompt(request)
    answers = [
        model.complete(prompt, CompletionOptions(temperature=0.9, sample_index=i)).text
        for i in range(4)
    ]
    assert len(set(answers)) == 1  # gaps do not vary with sampling


def test_sampling_error_varies_with_sample_index(mini_world):
    noise = NoiseConfig.perfect().with_sampling_error(0.6)
    model = SimulatedLLM(mini_world, noise, seed=9)
    request = LookupRequest(
        schema=COUNTRY, key_columns=("name",), attributes=("population", "gdp"),
        entities=tuple((n,) for n in ["France", "Germany", "Japan", "Kenya", "Chile"]),
    )
    prompt = build_lookup_prompt(request)
    texts = {
        model.complete(prompt, CompletionOptions(temperature=0.9, sample_index=i)).text
        for i in range(5)
    }
    assert len(texts) > 1  # i.i.d. per sample at temperature > 0
    greedy = {
        model.complete(prompt, CompletionOptions(temperature=0.0, sample_index=i)).text
        for i in range(5)
    }
    assert len(greedy) == 1  # systematic at temperature 0


def test_row_omission_shrinks_enumeration(mini_world):
    import dataclasses

    noise = dataclasses.replace(NoiseConfig.perfect(), row_omission_rate=0.5)
    model = SimulatedLLM(mini_world, noise, seed=2)
    page = enumerate_all(model)
    assert 0 < len(page.rows) < 10


def test_hallucinated_rows_appear(mini_world):
    import dataclasses

    noise = dataclasses.replace(NoiseConfig.perfect(), hallucinated_row_rate=0.9)
    model = SimulatedLLM(mini_world, noise, seed=2)
    page = enumerate_all(model)
    assert len(page.rows) > 10


def test_refusal(mini_world):
    import dataclasses

    noise = dataclasses.replace(NoiseConfig.perfect(), refusal_rate=1.0)
    model = SimulatedLLM(mini_world, noise, seed=2)
    prompt = build_enumerate_prompt(
        EnumerateRequest(schema=COUNTRY, columns=("name",))
    )
    completion = model.complete(prompt)
    assert "sorry" in completion.text.lower()


def test_usage_metrics_on_completion(perfect_model):
    prompt = build_enumerate_prompt(
        EnumerateRequest(schema=COUNTRY, columns=("name",), max_rows=5)
    )
    completion = perfect_model.complete(prompt)
    assert completion.prompt_tokens > 0
    assert completion.completion_tokens > 0
    assert completion.latency_ms > 0


# -- complexity measure ----------------------------------------------------------


@pytest.mark.parametrize(
    "sql,minimum",
    [
        ("SELECT name FROM countries", 0),
        ("SELECT name FROM countries WHERE a = 1 AND b = 2", 2),
        ("SELECT COUNT(*) FROM countries GROUP BY continent", 2),
        (
            "SELECT 1 FROM countries c JOIN cities t ON t.country = c.name "
            "ORDER BY 1",
            2,
        ),
    ],
)
def test_query_complexity_counts_operators(sql, minimum):
    assert _query_complexity(parse(sql)) >= minimum


def test_complexity_monotone_in_structure():
    simple = _query_complexity(parse("SELECT name FROM countries"))
    complex_query = _query_complexity(
        parse(
            "SELECT continent, COUNT(*) FROM countries WHERE population > 1 "
            "GROUP BY continent HAVING COUNT(*) > 1 ORDER BY 2 DESC"
        )
    )
    assert complex_query > simple


# -- property: believed enumeration is internally consistent ----------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=7))
def test_pagination_never_duplicates(seed, page_size):
    from repro.llm.world import World
    from repro.relational.table import Table
    from tests.conftest import COUNTRY_ROWS

    world = World("w", [Table(make_country_schema(), COUNTRY_ROWS)])
    model = SimulatedLLM(world, NoiseConfig(), seed=seed)
    collected = []
    after = 0
    for _ in range(30):
        request = EnumerateRequest(
            schema=COUNTRY, columns=("name",), after_index=after, max_rows=page_size
        )
        completion = model.complete(build_enumerate_prompt(request))
        page = parse_enumerate_completion(completion.text, [DataType.TEXT])
        collected.extend(row[0] for row in page.rows)
        after += len(page.rows)
        if page.complete and not page.has_more:
            break
    assert len(collected) == len(set(collected))
