"""Binder tests: name resolution, aggregate placement, output typing."""

import pytest

from repro.errors import BindError, CatalogError
from repro.relational.types import DataType
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse


@pytest.fixture
def binder(mini_catalog):
    return Binder(mini_catalog)


def test_qualifies_bare_columns(binder):
    bound = binder.bind(parse("SELECT name FROM countries"))
    expr = bound.query.select[0].expr
    assert expr == ast.ColumnRef(name="name", table="countries")


def test_alias_becomes_binding(binder):
    bound = binder.bind(parse("SELECT c.name FROM countries c"))
    assert "c" in bound.tables
    assert bound.query.select[0].expr.table == "c"


def test_unknown_table_raises(binder):
    with pytest.raises(CatalogError):
        binder.bind(parse("SELECT 1 FROM nope"))


def test_unknown_column_raises_with_candidates(binder):
    with pytest.raises(BindError) as excinfo:
        binder.bind(parse("SELECT wat FROM countries"))
    assert "wat" in str(excinfo.value)


def test_unique_column_across_join_binds(binder):
    bound = binder.bind(
        parse(
            "SELECT country FROM cities JOIN countries "
            "ON countries.name = cities.country WHERE city_pop > 1"
        )
    )
    assert bound.query.select[0].expr.table == "cities"


def test_ambiguous_column_raises(binder):
    with pytest.raises(BindError):
        binder.bind(
            parse("SELECT population FROM countries a JOIN countries b ON b.name = a.name")
        )


def test_duplicate_alias_raises(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT 1 FROM countries c JOIN cities c ON 1 = 1"))


def test_star_expansion_with_alias_rejected(binder):
    # The parser never produces an aliased star; exercise the binder's
    # own guard with a hand-built AST.
    query = ast.Query(
        select=[ast.SelectItem(expr=ast.Star(), alias="x")],
        from_clause=ast.NamedTable(name="countries"),
    )
    with pytest.raises(BindError):
        binder.bind(query)


def test_star_requires_from(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT *"))


def test_output_columns_and_types(binder):
    bound = binder.bind(
        parse("SELECT name, population / 2 AS half, gdp FROM countries")
    )
    names = bound.output_names
    assert names == ["name", "half", "gdp"]
    types = [column.dtype for column in bound.output_columns]
    assert types == [DataType.TEXT, DataType.REAL, DataType.REAL]


def test_count_types_integer(binder):
    bound = binder.bind(parse("SELECT COUNT(*) FROM countries"))
    assert bound.output_columns[0].dtype is DataType.INTEGER
    assert bound.uses_aggregates


def test_aggregate_in_where_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT name FROM countries WHERE COUNT(*) > 1"))


def test_aggregate_in_group_by_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT 1 FROM countries GROUP BY COUNT(*)"))


def test_nested_aggregate_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT SUM(COUNT(*)) FROM countries"))


def test_having_without_grouping_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT name FROM countries HAVING name = 'France'"))


def test_bare_column_with_implicit_grouping_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT name, COUNT(*) FROM countries"))


def test_bare_column_with_explicit_group_by_allowed(binder):
    bound = binder.bind(
        parse("SELECT continent, COUNT(*) FROM countries GROUP BY continent")
    )
    assert bound.has_group_by


def test_unknown_function_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT MAGIC(name) FROM countries"))


def test_star_arg_only_for_count(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT SUM(*) FROM countries"))


def test_order_by_position_out_of_range(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT name FROM countries ORDER BY 2"))


def test_order_by_alias_stays_unqualified(binder):
    bound = binder.bind(
        parse("SELECT population AS p FROM countries ORDER BY p DESC")
    )
    order_expr = bound.query.order_by[0].expr
    assert order_expr == ast.ColumnRef(name="p")


def test_order_by_table_column_is_bound(binder):
    bound = binder.bind(parse("SELECT name FROM countries ORDER BY gdp"))
    assert bound.query.order_by[0].expr == ast.ColumnRef(name="gdp", table="countries")


def test_correlated_subquery_binds(binder):
    bound = binder.bind(
        parse(
            "SELECT name FROM countries k WHERE EXISTS "
            "(SELECT 1 FROM cities c WHERE c.country = k.name)"
        )
    )
    exists = bound.query.where
    inner_where = exists.query.where
    assert inner_where.right == ast.ColumnRef(name="name", table="k")


def test_in_subquery_must_be_single_column(binder):
    with pytest.raises(BindError):
        binder.bind(
            parse("SELECT 1 FROM countries WHERE name IN (SELECT name, gdp FROM countries)")
        )


def test_scalar_subquery_must_be_single_column(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT (SELECT name, gdp FROM countries) FROM countries"))


def test_setop_column_count_mismatch(binder):
    with pytest.raises(BindError):
        binder.bind(parse("SELECT name, gdp FROM countries UNION SELECT name FROM countries"))


def test_setop_order_by_output_name(binder):
    bound = binder.bind(
        parse("SELECT name FROM countries UNION SELECT city FROM cities ORDER BY name")
    )
    assert bound.output_names == ["name"]


def test_setop_order_by_unknown_name_rejected(binder):
    with pytest.raises(BindError):
        binder.bind(
            parse("SELECT name FROM countries UNION SELECT city FROM cities ORDER BY wat")
        )


def test_derived_table_columns_visible(binder):
    bound = binder.bind(
        parse(
            "SELECT d.n FROM (SELECT COUNT(*) AS n FROM countries) AS d WHERE d.n > 0"
        )
    )
    assert bound.output_names == ["n"]


def test_case_type_inference(binder):
    bound = binder.bind(
        parse(
            "SELECT CASE WHEN population > 0 THEN 1 ELSE 0 END FROM countries"
        )
    )
    assert bound.output_columns[0].dtype is DataType.INTEGER


def test_duplicate_output_names_uniquified(binder):
    bound = binder.bind(parse("SELECT name, name FROM countries"))
    assert bound.output_names == ["name", "name_2"]
