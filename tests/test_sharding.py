"""Sharded partition-parallel scans: merge semantics and identity.

The acceptance bar for sharding is *byte-identity*: at any
``scan_shards`` value, rows (values **and** Python types — an int SUM
must not become a float) match the single-chain engine, with and
without the storage tier.  Partial-aggregate pushdown must reproduce
the reference executor's semantics exactly: NULL skipping, COUNT(*)
vs COUNT(col), empty inputs, group order, AVG recomposition.
"""

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.errors import ConfigError
from repro.eval.worlds import all_worlds
from repro.llm.accounting import UsageSnapshot
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World
from repro.plan.physical import ShardedScanStep
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

NOISELESS = NoiseConfig(
    knowledge_gap_rate=0.0,
    sampling_error_rate=0.0,
    row_omission_rate=0.0,
    hallucinated_row_rate=0.0,
    format_noise_rate=0.0,
)

SEED = 5


def tagged(rows):
    """Type-tagged rows: 3 and 3.0 must not compare equal."""
    return [tuple((type(v).__name__, v) for v in row) for row in rows]


def build_engine(world, config, row_estimates=None):
    model = SimulatedLLM(world, noise=NOISELESS, seed=SEED)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        estimate = (
            row_estimates.get(schema.name)
            if row_estimates is not None
            else world.row_count(schema.name)
        )
        engine.register_virtual_table(schema, row_estimate=estimate)
    return engine


def run_queries(world, config, queries, row_estimates=None):
    engine = build_engine(world, config, row_estimates)
    results = []
    for sql in queries:
        result = engine.execute(sql)
        results.append(
            (tagged(result.rows), tuple(result.table.schema.column_names))
        )
    return results, engine


def sharded_config(shards, **extra):
    return EngineConfig().with_(
        scan_shards=shards,
        shard_min_rows=8,
        scan_prefetch_pages=0,
        **extra,
    )


# ---------------------------------------------------------------------------
# Custom worlds
# ---------------------------------------------------------------------------


def readings_world():
    """Sensor readings with NULL values and an all-NULL group.

    Values are dyadic fractions (k/4), so float partial sums are exact
    and AVG recomposition must match the single chain bit for bit.
    """
    schema = TableSchema(
        name="readings",
        columns=(
            Column("id", DataType.INTEGER, nullable=False, description="reading id"),
            Column("sensor", DataType.TEXT, description="sensor name"),
            Column("value", DataType.REAL, description="measured value"),
            Column("ticks", DataType.INTEGER, description="integer counter"),
        ),
        primary_key=("id",),
        description="synthetic sensor readings",
    )
    rows = []
    for i in range(1, 49):
        value = None if i % 5 == 0 else 100.25 + (i % 7) * 0.5
        rows.append((i, f"s{i % 3}", value, i * 3))
    # An entirely-NULL sensor: MIN/MAX/AVG over it must be NULL.
    for i in range(1, 5):
        rows.append((100 + i, "dead", None, 100 + i))
    return World("readings", [Table(schema, rows)], description="readings")


def tiny_world(rows=3):
    schema = TableSchema(
        name="tiny",
        columns=(
            Column("id", DataType.INTEGER, nullable=False, description="id"),
            Column("label", DataType.TEXT, description="label"),
        ),
        primary_key=("id",),
        description="a very small table",
    )
    return World(
        "tiny",
        [Table(schema, [(i, f"row{i}") for i in range(1, rows + 1)])],
        description="tiny",
    )


# ---------------------------------------------------------------------------
# Byte-identity
# ---------------------------------------------------------------------------

MOVIES_QUERIES = [
    "SELECT title, year FROM movies",
    "SELECT title FROM movies WHERE year >= 2000",
    "SELECT COUNT(*) FROM movies",
    "SELECT director, COUNT(*), MIN(year), MAX(year) FROM movies GROUP BY director",
    "SELECT director, AVG(year) a FROM movies GROUP BY director ORDER BY a DESC, director LIMIT 5",
    "SELECT COUNT(*), SUM(year) FROM movies WHERE year < 1990",
    "SELECT genre, COUNT(*) n FROM movies GROUP BY genre ORDER BY n DESC, genre",
    "SELECT m.title, d.country FROM movies m JOIN directors d ON m.director = d.name "
    "WHERE m.year >= 2010",
    "SELECT title, rating FROM movies ORDER BY rating DESC, title LIMIT 7",
]


@pytest.mark.parametrize("shards", [2, 8])
@pytest.mark.parametrize("max_in_flight", [1, 8])
def test_sharded_rows_byte_identical(shards, max_in_flight):
    world = all_worlds()["movies"]
    base, _ = run_queries(world, sharded_config(1), MOVIES_QUERIES)
    got, engine = run_queries(
        world,
        sharded_config(shards, max_in_flight=max_in_flight),
        MOVIES_QUERIES,
    )
    assert got == base
    assert engine.usage.sharded_scans > 0
    assert engine.usage.shard_chains > engine.usage.sharded_scans


def test_sharded_byte_identical_under_materialize():
    world = all_worlds()["movies"]
    base, _ = run_queries(world, sharded_config(1), MOVIES_QUERIES)
    config = sharded_config(8, max_in_flight=8, storage_mode="materialize")
    engine = build_engine(world, config)
    for repeat in range(2):  # warm pass must serve identical bytes
        for sql, expected in zip(MOVIES_QUERIES, base):
            result = engine.execute(sql)
            assert (
                tagged(result.rows),
                tuple(result.table.schema.column_names),
            ) == expected, f"repeat {repeat}: {sql}"


def test_sharded_scan_writes_union_fragment():
    """Coverage union: future whole-table scans route to storage."""
    world = all_worlds()["movies"]
    engine = build_engine(
        world, sharded_config(8, max_in_flight=8, storage_mode="materialize")
    )
    cold = engine.execute("SELECT title, year FROM movies")
    assert cold.usage.calls > 0
    assert cold.usage.shard_chains == 8
    warm = engine.execute("SELECT year FROM movies")  # subset of the union
    assert warm.usage.calls == 0
    assert warm.usage.fragment_hits == 1
    assert any("fragment[movies]" in note for note in warm.explain_text.splitlines())


def test_shard_fragments_serve_identical_rerun_chains():
    """Per-shard fragments serve a same-shape sharded scan for free."""
    world = all_worlds()["movies"]
    engine = build_engine(
        world, sharded_config(8, max_in_flight=8, storage_mode="materialize")
    )
    engine.execute("SELECT title FROM movies WHERE year >= 2000")
    # Different SQL text, same scan shape (condition + sharding): the
    # result cache misses but every shard chain hits its fragment.
    before = engine.usage
    result = engine.execute("SELECT title t FROM movies WHERE year >= 2000")
    assert result.usage.calls == 0
    assert engine.usage.calls == before.calls


def test_seeded_shard_fragments_serve_chains_without_calls():
    """With no union fragment, chains are served shard-by-shard."""
    from repro.llm.cache import resolve_model_name
    from repro.storage.fragments import ScanFragment
    from repro.storage.tier import StorageTier

    world = all_worlds()["movies"]
    config = sharded_config(4, storage_mode="materialize")
    donor = build_engine(world, config)
    cold = donor.execute("SELECT title, year FROM movies")

    receiver = build_engine(world, config)
    plan = receiver.plan("SELECT title, year FROM movies")
    (step,) = plan.steps
    assert isinstance(step, ShardedScanStep)
    scope = StorageTier.fragment_scope(
        resolve_model_name(receiver._session.model),
        config,
        receiver.catalog_scope,
    )
    rows = list(cold.rows)
    for shard in step.shards:
        end = (
            len(rows)
            if shard.row_target is None
            else min(len(rows), shard.start + shard.row_target)
        )
        receiver.storage.store_shard_fragment(
            scope,
            "movies",
            None,
            shard.index,
            len(step.shards),
            shard.start,
            ScanFragment(
                columns=("title", "year"),
                rows=tuple(tuple(row) for row in rows[shard.start : end]),
                complete=True,
                source_calls=2,
            ),
        )
    warm = receiver.execute("SELECT title, year FROM movies")
    assert warm.usage.calls == 0
    assert tagged(warm.rows) == tagged(cold.rows)
    assert warm.usage.fragment_hits == 4  # one hit per chain


# ---------------------------------------------------------------------------
# Merge semantics
# ---------------------------------------------------------------------------


def test_empty_shards_and_shard_count_above_row_count():
    """Overestimated stats leave trailing shards empty; rows still match."""
    world = tiny_world(rows=3)
    estimates = {"tiny": 64}  # 8 shards of ~8 rows over a 3-row table
    queries = [
        "SELECT id, label FROM tiny",
        "SELECT COUNT(*) FROM tiny",
        "SELECT MIN(id), MAX(id) FROM tiny",
    ]
    base, _ = run_queries(
        world, sharded_config(1), queries, row_estimates=estimates
    )
    config = EngineConfig().with_(
        scan_shards=8, shard_min_rows=1, scan_prefetch_pages=0
    )
    got, engine = run_queries(world, config, queries, row_estimates=estimates)
    assert got == base
    assert engine.usage.shard_chains == 24  # every chain ran, most empty


def test_min_max_over_nulls_and_all_null_groups():
    world = readings_world()
    queries = [
        "SELECT MIN(value), MAX(value), COUNT(value), COUNT(*) FROM readings",
        "SELECT sensor, MIN(value), MAX(value), AVG(value) FROM readings "
        "GROUP BY sensor",
        "SELECT sensor, COUNT(value), COUNT(*) FROM readings GROUP BY sensor",
    ]
    base, _ = run_queries(world, sharded_config(1), queries)
    got, _ = run_queries(world, sharded_config(6), queries)
    assert got == base
    # The all-NULL group aggregates to NULL (but counts its rows).
    grouped = dict(
        (row[0][1], row[1:]) for row in base[1][0]
    )
    assert grouped["dead"] == (
        ("NoneType", None), ("NoneType", None), ("NoneType", None)
    )


def test_avg_recomposition_is_exact():
    """Dyadic values: merged sum+count must equal the single chain."""
    world = readings_world()
    queries = [
        "SELECT AVG(value) FROM readings",
        "SELECT sensor, AVG(value) FROM readings GROUP BY sensor",
        "SELECT AVG(ticks) FROM readings",
    ]
    base, _ = run_queries(world, sharded_config(1), queries)
    for shards in (2, 5, 8):
        got, _ = run_queries(world, sharded_config(shards), queries)
        assert got == base, f"AVG diverged at {shards} shards"


def test_sum_type_preservation_across_merge():
    """Integer SUMs stay int through the shard merge."""
    world = readings_world()
    queries = ["SELECT SUM(ticks) FROM readings", "SELECT SUM(value) FROM readings"]
    got, _ = run_queries(world, sharded_config(4), queries)
    (int_sum,), _ = got[0][0][0], got[0][1]
    assert int_sum[0] == "int"
    (real_sum,) = got[1][0][0]
    assert real_sum[0] == "float"


def test_aggregate_over_empty_filter_result():
    world = readings_world()
    queries = [
        "SELECT COUNT(*), SUM(ticks), MIN(value), AVG(value) FROM readings "
        "WHERE ticks < 0",
        "SELECT sensor, COUNT(*) FROM readings WHERE ticks < 0 GROUP BY sensor",
    ]
    base, _ = run_queries(world, sharded_config(1), queries)
    got, _ = run_queries(world, sharded_config(6), queries)
    assert got == base
    assert got[0][0] == [
        (("int", 0), ("NoneType", None), ("NoneType", None), ("NoneType", None))
    ]
    assert got[1][0] == []  # grouped empty input: no groups


def test_ineligible_aggregates_fall_back_but_stay_correct():
    """HAVING / DISTINCT / expressions skip the pushdown, not sharding."""
    world = all_worlds()["movies"]
    queries = [
        "SELECT director, COUNT(*) n FROM movies GROUP BY director "
        "HAVING COUNT(*) >= 10 ORDER BY n DESC, director",
        "SELECT COUNT(DISTINCT director) FROM movies",
        "SELECT COUNT(*) + 1 FROM movies",
        "SELECT genre, year FROM movies GROUP BY genre, year ORDER BY genre, year LIMIT 10",
    ]
    base, _ = run_queries(world, sharded_config(1), queries)
    got, engine = run_queries(world, sharded_config(8, max_in_flight=4), queries)
    assert got == base
    plan_text = engine.explain(queries[0])
    assert "LLMShardedScan" in plan_text
    assert "partial-agg" not in plan_text


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def test_explain_shows_shards_and_partial_aggregates():
    world = all_worlds()["movies"]
    engine = build_engine(world, sharded_config(8))
    text = engine.explain(
        "SELECT director, COUNT(*), AVG(year) FROM movies GROUP BY director"
    )
    assert "LLMShardedScan movies" in text
    assert "shards=8" in text
    assert "partial-agg[COUNT(*), AVG(movies.year) by (director)]" in text
    assert "note: sharded-scan[movies]: 8 shard(s)" in text


def test_small_tables_and_limit_pushdown_stay_unsharded():
    world = all_worlds()["movies"]
    engine = build_engine(world, sharded_config(8))
    # directors has ~30 rows; shard_min_rows=8 caps it below 8 shards
    # but a LIMIT-pushdown scan must keep its single early-terminating
    # chain regardless.
    text = engine.explain(
        "SELECT title FROM movies ORDER BY rating DESC LIMIT 3"
    )
    assert "LLMShardedScan" not in text
    assert "limit" in text.lower()

    tiny = tiny_world(rows=3)
    engine_tiny = build_engine(tiny, sharded_config(8))
    assert "LLMShardedScan" not in engine_tiny.explain("SELECT id FROM tiny")


def test_shard_plan_shapes():
    world = all_worlds()["movies"]
    engine = build_engine(world, sharded_config(8))
    plan = engine.plan("SELECT title, year FROM movies")
    (step,) = plan.steps
    assert isinstance(step, ShardedScanStep)
    assert len(step.shards) == 8
    assert step.shards[0].start == 0
    assert step.shards[-1].row_target is None  # open-ended tail
    targets = [shard.row_target for shard in step.shards[:-1]]
    assert all(target == targets[0] for target in targets)
    starts = [shard.start for shard in step.shards]
    assert starts == sorted(starts)
    # The sharded estimate pays per-shard page rounding, never less
    # calls than the single chain.
    assert step.estimate.calls >= step.scan.estimate.calls


# ---------------------------------------------------------------------------
# Config, accounting, CLI
# ---------------------------------------------------------------------------


def test_shard_config_validation():
    with pytest.raises(ConfigError):
        EngineConfig(scan_shards=0)
    with pytest.raises(ConfigError):
        EngineConfig(shard_min_rows=0)
    with pytest.raises(ConfigError):
        EngineConfig().with_(scan_shards=-3)


def test_usage_snapshot_shard_counters():
    a = UsageSnapshot(sharded_scans=2, shard_chains=16)
    b = UsageSnapshot(sharded_scans=1, shard_chains=8)
    assert a.minus(b).shard_chains == 8
    assert a.plus(b).sharded_scans == 3
    assert "2 sharded scan(s) (16 chain(s))" in a.render()
    assert "sharded" not in UsageSnapshot().render()


def test_cli_scan_shards_flag(capsys):
    from repro.cli import main

    code = main(
        [
            "--world",
            "movies",
            "--scan-shards",
            "4",
            "--shard-min-rows",
            "8",
            "-c",
            "SELECT COUNT(*) FROM movies",
        ]
    )
    assert code == 0
    assert capsys.readouterr().out.strip()

    code = main(["--world", "movies", "--scan-shards", "0", "-c", "SELECT 1"])
    assert code == 2


def test_cli_rejects_bad_shard_min_rows():
    from repro.cli import main

    assert main(
        ["--world", "movies", "--shard-min-rows", "0", "-c", "SELECT 1"]
    ) == 2
