"""Tests for the persistent multi-tenant storage subsystem.

Covers the SQLite store backend (semantics parity with the in-memory
store, eviction at identical budget boundaries), the multi-tenant
scope machinery (strict isolation, per-scope TTL defaults,
generation-stamp invalidation observed across tiers and processes),
cold-restart reuse (~0 model calls on a warm workload, byte-identical),
concurrent multi-process sharing of one store file, and graceful
``error:``-free degradation to memory on a corrupt or unopenable file.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import EngineConfig, parse_storage_scope
from repro.core.engine import LLMStorageEngine
from repro.errors import ConfigError
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.storage.backend import StorageScope, build_backends
from repro.storage.persistent import SqliteBackend, StorageBackendError
from repro.storage.store import LRUByteStore
from repro.storage.tier import StorageSnapshot, StorageTier
from tests.conftest import make_engine


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


WORKLOAD = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 3",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT COUNT(*) FROM cities",
]


def sqlite_config(path, scope: str = "application", **extra) -> EngineConfig:
    return EngineConfig(
        storage_mode="materialize",
        storage_backend="sqlite",
        storage_path=str(path),
        storage_scope=scope,
        **extra,
    )


def run_workload(engine: LLMStorageEngine):
    return [tuple(map(tuple, engine.execute(sql).rows)) for sql in WORKLOAD]


# ---------------------------------------------------------------------------
# Config surface
# ---------------------------------------------------------------------------


def test_sqlite_backend_requires_path():
    with pytest.raises(ConfigError):
        EngineConfig(storage_backend="sqlite")


def test_unknown_backend_and_scope_rejected():
    with pytest.raises(ConfigError):
        EngineConfig(storage_backend="redis")
    with pytest.raises(ConfigError):
        EngineConfig(storage_scope="galaxy")
    with pytest.raises(ConfigError):
        EngineConfig(scope_ttl_s={"galaxy": 10.0})
    with pytest.raises(ConfigError):
        EngineConfig(scope_ttl_s={"user": -1.0})


def test_scope_parsing_and_defaults():
    assert parse_storage_scope("user:alice") == ("user", "alice")
    assert parse_storage_scope("APPLICATION") == ("application", None)
    assert StorageScope.parse("user").tenant == "default"
    assert StorageScope.parse("application").tenant == "shared"
    # A session without an explicit tenant must never collide with
    # another session's.
    assert StorageScope.parse("session").tenant != StorageScope.parse(
        "session"
    ).tenant
    assert StorageScope.parse("session:pinned").tenant == "pinned"


def test_scope_ttl_normalized_to_sorted_tuple():
    config = EngineConfig(scope_ttl_s={"user": 60, "session": 5})
    assert config.scope_ttl_s == (("session", 5.0), ("user", 60.0))


# ---------------------------------------------------------------------------
# SqliteBackend semantics parity with LRUByteStore
# ---------------------------------------------------------------------------


def make_backend(tmp_path, **kwargs) -> SqliteBackend:
    return SqliteBackend(str(tmp_path / "store.db"), **kwargs)


def test_sqlite_put_get_peek_roundtrip(tmp_path):
    backend = make_backend(tmp_path, budget_bytes=10_000)
    key = ("user", "alice", 0, "scan", "t", "")
    backend.put(key, {"rows": [1, 2, 3]}, size=100)
    assert backend.get(key) == {"rows": [1, 2, 3]}
    assert backend.peek(key) == {"rows": [1, 2, 3]}
    assert backend.get(("other",)) is None
    assert backend.stats.hits == 1 and backend.stats.misses == 1
    assert backend.bytes_used == 100
    backend.remove(key)
    assert backend.peek(key) is None


def test_sqlite_ttl_expiry_and_per_entry_override(tmp_path):
    clock = FakeClock()
    backend = make_backend(tmp_path, budget_bytes=10_000, ttl_s=10.0, clock=clock)
    backend.put(("a",), "x")
    backend.put(("b",), "y", ttl_s=100.0)  # per-entry override outlives
    clock.advance(11.0)
    assert backend.get(("a",)) is None
    assert backend.stats.expirations == 1
    assert backend.get(("b",)) == "y"
    clock.advance(95.0)
    assert backend.get(("b",)) is None


def test_sqlite_peek_is_strictly_read_only(tmp_path):
    clock = FakeClock()
    backend = make_backend(tmp_path, budget_bytes=10_000, ttl_s=10.0, clock=clock)
    backend.put(("a",), "x")
    clock.advance(11.0)
    assert backend.peek(("a",)) is None
    # Expired entry neither deleted nor counted by the probe.
    assert backend.stats.expirations == 0
    assert len(backend) == 1


def test_sqlite_and_memory_evict_at_identical_boundaries(tmp_path):
    """The satellite bar: deterministic sizing ⇒ identical LRU decisions."""
    memory = LRUByteStore(budget_bytes=300)
    sqlite = make_backend(tmp_path, budget_bytes=300)
    ops = [
        ("put", ("k", 1), "v1", 100),
        ("put", ("k", 2), "v2", 100),
        ("put", ("k", 3), "v3", 100),
        ("get", ("k", 1)),  # bump recency of k1
        ("put", ("k", 4), "v4", 100),  # must evict k2 in both
        ("put", ("k", 5), "oversized", 500),  # admitted alone in both
    ]
    for op in ops:
        for store in (memory, sqlite):
            if op[0] == "put":
                store.put(op[1], op[2], size=op[3])
            else:
                store.get(op[1])
    for key in [("k", i) for i in range(1, 6)]:
        assert memory.peek(key) == sqlite.peek(key), key
    assert memory.bytes_used == sqlite.bytes_used
    assert memory.stats.evictions == sqlite.stats.evictions
    assert memory.stats.oversized == sqlite.stats.oversized == 1


def test_sqlite_scope_prefix_removal_is_isolated(tmp_path):
    backend = make_backend(tmp_path, budget_bytes=10_000)
    backend.put(("user", "alice", 0, "scan", "t"), "a")
    backend.put(("user", "alice", 0, "row", "t"), "b")
    backend.put(("user", "alicia", 0, "scan", "t"), "c")  # prefix-similar
    backend.put(("application", "shared", 0, "scan", "t"), "d")
    assert backend.remove_scope(("user", "alice")) == 2
    assert backend.peek(("user", "alice", 0, "scan", "t")) is None
    assert backend.peek(("user", "alicia", 0, "scan", "t")) == "c"
    assert backend.peek(("application", "shared", 0, "scan", "t")) == "d"


def test_sqlite_generations_shared_through_file(tmp_path):
    path = tmp_path / "store.db"
    a = SqliteBackend(str(path), budget_bytes=1000)
    b = SqliteBackend(str(path), budget_bytes=1000)
    assert a.generation("user:alice") == 0
    assert a.bump_generation("user:alice") == 1
    # Observed by an independent connection to the same file.
    assert b.generation("user:alice") == 1
    assert b.generation("user:bob") == 0


def test_sqlite_open_failure_raises_backend_error(tmp_path):
    missing_dir = tmp_path / "no" / "such" / "dir" / "store.db"
    with pytest.raises(StorageBackendError):
        SqliteBackend(str(missing_dir), budget_bytes=1000)
    corrupt = tmp_path / "corrupt.db"
    corrupt.write_bytes(b"definitely not a sqlite database" * 64)
    with pytest.raises(StorageBackendError):
        SqliteBackend(str(corrupt), budget_bytes=1000)


def test_build_backends_degrades_to_memory_with_note(tmp_path):
    corrupt = tmp_path / "corrupt.db"
    corrupt.write_bytes(b"garbage" * 100)
    fragments, results, note = build_backends(
        "sqlite", 1000, 0.0, path=str(corrupt)
    )
    assert fragments.name == results.name == "memory"
    assert note is not None and "using memory" in note


# ---------------------------------------------------------------------------
# Tier-level multi-tenancy
# ---------------------------------------------------------------------------


def make_tier(path, scope: str, **kwargs) -> StorageTier:
    return StorageTier(
        mode="materialize",
        budget_bytes=100_000,
        backend="sqlite",
        path=str(path),
        scope=scope,
        **kwargs,
    )


def store_result(tier: StorageTier, key, country_table, calls: int = 3):
    tier.put_result(
        key,
        schema=country_table.schema,
        rows=country_table.rows[:2],
        explain_text="plan",
        warnings=(),
        calls=calls,
    )


def test_scopes_never_serve_each_other(tmp_path, country_table):
    path = tmp_path / "store.db"
    alice = make_tier(path, "user:alice")
    bob = make_tier(path, "user:bob")
    app = make_tier(path, "application")
    key = ("result", "m", (), "", "q")
    store_result(alice, key, country_table)
    assert alice.get_result(key) is not None
    assert bob.get_result(key) is None
    assert app.get_result(key) is None
    # Same level + same tenant shares; session scopes never do.
    alice2 = make_tier(path, "user:alice")
    assert alice2.get_result(key) is not None
    s1 = make_tier(path, "session")
    s2 = make_tier(path, "session")
    store_result(s1, key, country_table)
    assert s1.get_result(key) is not None
    assert s2.get_result(key) is None


def test_per_scope_ttl_defaults(tmp_path, country_table):
    clock = FakeClock()
    path = tmp_path / "store.db"
    user = make_tier(
        path, "user", clock=clock, scope_ttl_s={"user": 30.0}
    )
    app = make_tier(path, "application", clock=clock, scope_ttl_s={"user": 30.0})
    key = ("result", "m", (), "", "q")
    store_result(user, key, country_table)
    store_result(app, key, country_table)
    clock.advance(29.0)
    assert user.get_result(key) is not None
    clock.advance(2.0)
    # The user scope's 30s default expired its entry; the application
    # scope has no per-scope TTL and inherits the store default (none).
    assert user.get_result(key) is None
    assert app.get_result(key) is not None


def test_entries_carry_writer_ttl_across_tiers(tmp_path, country_table):
    """A reader honors the TTL the writing scope stored, not its own."""
    clock = FakeClock()
    path = tmp_path / "store.db"
    writer = make_tier(path, "user:x", clock=clock, scope_ttl_s={"user": 10.0})
    reader = make_tier(path, "user:x", clock=clock)  # no TTL of its own
    key = ("result", "m", (), "", "q")
    store_result(writer, key, country_table)
    clock.advance(5.0)
    assert reader.get_result(key) is not None
    clock.advance(6.0)
    assert reader.get_result(key) is None


def test_clear_invalidates_other_tier_on_same_file(tmp_path, country_table):
    """Cross-tier (stand-in for cross-process) generation invalidation."""
    path = tmp_path / "store.db"
    a = make_tier(path, "user:alice")
    b = make_tier(path, "user:alice")
    key = ("result", "m", (), "", "q")
    store_result(a, key, country_table)
    assert b.get_result(key) is not None
    before = b.snapshot().invalidations
    a.clear()
    # b's next access reads the bumped stamp: the old entry is
    # unreachable and the invalidation is observed exactly once.
    assert b.get_result(key) is None
    assert b.snapshot().invalidations == before + 1
    assert a.snapshot().invalidations == 1
    # Other scopes are untouched by the bump.
    c = make_tier(path, "user:carol")
    store_result(c, key, country_table)
    a.clear()
    assert c.get_result(key) is not None


def test_storage_snapshot_minus_includes_backend_counters():
    later = StorageSnapshot(
        result_hits=5,
        persistent_hits=7,
        persistent_misses=4,
        invalidations=3,
        backend="sqlite",
    )
    earlier = StorageSnapshot(
        result_hits=2,
        persistent_hits=3,
        persistent_misses=1,
        invalidations=1,
        backend="sqlite",
    )
    diff = later.minus(earlier)
    assert diff.result_hits == 3
    assert diff.persistent_hits == 4
    assert diff.persistent_misses == 3
    assert diff.invalidations == 2
    assert diff.backend == "sqlite"


# ---------------------------------------------------------------------------
# Engine-level: cold restart, isolation, degradation
# ---------------------------------------------------------------------------


def build_sqlite_engine(world, path, scope="application", seed=5):
    model = SimulatedLLM(world, NoiseConfig.perfect(), seed=seed)
    return make_engine(model, world, sqlite_config(path, scope))


def test_cold_restart_serves_with_zero_calls(tmp_path, mini_world):
    """The acceptance demo: a fresh process pays ~0 calls, byte-identical."""
    path = tmp_path / "tier.db"
    reference = run_workload(
        make_engine(
            SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5),
            mini_world,
            EngineConfig(storage_mode="off"),
        )
    )
    first = build_sqlite_engine(mini_world, path)
    assert run_workload(first) == reference
    assert first.usage.calls > 0

    # "Restart": a brand-new engine + model over the same store file.
    second = build_sqlite_engine(mini_world, path)
    assert run_workload(second) == reference
    assert second.usage.calls == 0
    assert second.usage.calls_saved > 0
    assert second.usage.persistent_hits > 0
    assert "persistent" in second.storage.describe()


def test_restarted_session_scope_never_reuses(tmp_path, mini_world):
    path = tmp_path / "tier.db"
    first = build_sqlite_engine(mini_world, path, scope="session")
    run_workload(first)
    second = build_sqlite_engine(mini_world, path, scope="session")
    run_workload(second)
    # Anonymous session tenants are unique per tier: no sharing.
    assert second.usage.calls == first.usage.calls > 0


def test_engine_scopes_are_isolated(tmp_path, mini_world):
    path = tmp_path / "tier.db"
    alice = build_sqlite_engine(mini_world, path, scope="user:alice")
    reference = run_workload(alice)
    assert alice.usage.calls > 0
    bob = build_sqlite_engine(mini_world, path, scope="user:bob")
    assert run_workload(bob) == reference
    # Strict isolation: bob re-pays the full workload.
    assert bob.usage.calls == alice.usage.calls


def test_catalog_change_invalidates_without_wiping_store(tmp_path, mini_world):
    from repro.relational.schema import Column, TableSchema
    from repro.relational.types import DataType

    path = tmp_path / "tier.db"
    warm = build_sqlite_engine(mini_world, path)
    run_workload(warm)

    changed = build_sqlite_engine(mini_world, path)
    changed.register_virtual_table(
        TableSchema(
            name="rivers",
            columns=(Column("name", DataType.TEXT, nullable=False),),
            primary_key=("name",),
        ),
        row_estimate=10,
    )
    # A different catalog fingerprint must not serve the old entries...
    assert changed.usage.calls == 0
    changed.execute(WORKLOAD[0])
    assert changed.usage.calls > 0
    # ...but the old catalog's entries survive for a same-catalog restart.
    again = build_sqlite_engine(mini_world, path)
    run_workload(again)
    assert again.usage.calls == 0


def test_corrupt_file_degrades_to_memory_without_error(tmp_path, mini_world):
    path = tmp_path / "tier.db"
    path.write_bytes(b"this is not a database" * 32)
    engine = build_sqlite_engine(mini_world, path)
    reference = run_workload(
        make_engine(
            SimulatedLLM(mini_world, NoiseConfig.perfect(), seed=5),
            mini_world,
            EngineConfig(storage_mode="off"),
        )
    )
    assert run_workload(engine) == reference  # still answers, no raise
    assert engine.storage.backend_name == "memory"
    described = engine.storage.describe()
    assert "using memory" in described
    assert "error:" not in described


def test_clear_cache_only_clears_own_scope(tmp_path, mini_world):
    path = tmp_path / "tier.db"
    alice = build_sqlite_engine(mini_world, path, scope="user:alice")
    bob = build_sqlite_engine(mini_world, path, scope="user:bob")
    run_workload(alice)
    run_workload(bob)
    alice.clear_cache()
    bob2 = build_sqlite_engine(mini_world, path, scope="user:bob")
    run_workload(bob2)
    assert bob2.usage.calls == 0  # bob's entries survived alice's clear
    alice2 = build_sqlite_engine(mini_world, path, scope="user:alice")
    run_workload(alice2)
    assert alice2.usage.calls > 0  # alice's own entries are gone


# ---------------------------------------------------------------------------
# Cross-process sharing (real subprocesses over one store file)
# ---------------------------------------------------------------------------

CHILD_SCRIPT = """
import sys

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

path, scope = sys.argv[1], sys.argv[2]
world = all_worlds()["geography"]
model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=7)
engine = LLMStorageEngine(
    model,
    config=EngineConfig(
        storage_mode="materialize",
        storage_backend="sqlite",
        storage_path=path,
        storage_scope=scope,
    ),
)
for schema in world.schemas():
    engine.register_virtual_table(
        schema, row_estimate=world.row_count(schema.name)
    )
queries = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT name FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 3",
    "SELECT COUNT(*) FROM cities",
]
rows = [tuple(map(tuple, engine.execute(sql).rows)) for sql in queries]
print(repr({"rows": rows, "calls": engine.usage.calls}))
"""


def spawn_child(script_path, db_path, scope):
    src = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.Popen(
        [sys.executable, str(script_path), str(db_path), scope],
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def child_output(process):
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, stderr
    return ast.literal_eval(stdout.strip())


def test_concurrent_processes_share_one_store_byte_identically(tmp_path):
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT, encoding="utf-8")
    db_path = tmp_path / "shared.db"

    # Two concurrent processes, one scope, one WAL file.
    first = spawn_child(script, db_path, "application")
    second = spawn_child(script, db_path, "application")
    out_first = child_output(first)
    out_second = child_output(second)
    assert out_first["rows"] == out_second["rows"]

    # A third (cold-restart) process serves entirely from the file.
    warm = child_output(spawn_child(script, db_path, "application"))
    assert warm["rows"] == out_first["rows"]
    assert warm["calls"] == 0

    # A different scope over the same file never sees those entries.
    other = child_output(spawn_child(script, db_path, "user:outsider"))
    assert other["rows"] == out_first["rows"]
    assert other["calls"] > 0
