"""Scalar function and aggregate accumulator tests."""

import pytest

from repro.errors import ExecutionError
from repro.relational.aggregates import (
    aggregate_names,
    create_accumulator,
    is_aggregate_function,
)
from repro.relational.functions import call_scalar, is_scalar_function


# -- scalar functions -----------------------------------------------------------


@pytest.mark.parametrize(
    "name,args,expected",
    [
        ("UPPER", ["ab"], "AB"),
        ("LOWER", ["AB"], "ab"),
        ("LENGTH", ["abc"], 3),
        ("ABS", [-3], 3),
        ("ABS", [-2.5], 2.5),
        ("ROUND", [2.567, 2], 2.57),
        ("ROUND", [2.4], 2.0),
        ("FLOOR", [2.9], 2),
        ("CEIL", [2.1], 3),
        ("SUBSTR", ["hello", 2], "ello"),
        ("SUBSTR", ["hello", 2, 3], "ell"),
        ("SUBSTR", ["hello", 0], "hello"),
        ("TRIM", ["  x  "], "x"),
        ("REPLACE", ["banana", "na", "NO"], "baNONO"),
        ("COALESCE", [None, None, 5], 5),
        ("COALESCE", [None], None),
        ("NULLIF", [3, 3], None),
        ("NULLIF", [3, 4], 3),
        ("CONCAT", ["a", None, "b"], "ab"),
        ("SQRT", [9], 3.0),
        ("SQRT", [-1], None),
        ("POWER", [2, 10], 1024.0),
        ("SIGN", [-7], -1),
        ("SIGN", [0], 0),
    ],
)
def test_scalar_functions(name, args, expected):
    assert call_scalar(name, args) == expected


def test_null_propagation():
    assert call_scalar("UPPER", [None]) is None
    assert call_scalar("ROUND", [None, 2]) is None


def test_unknown_function_raises():
    with pytest.raises(ExecutionError):
        call_scalar("NOPE", [1])


def test_wrong_arity_raises():
    with pytest.raises(ExecutionError):
        call_scalar("LENGTH", ["a", "b"])
    with pytest.raises(ExecutionError):
        call_scalar("COALESCE", [])


def test_type_errors_raise():
    with pytest.raises(ExecutionError):
        call_scalar("ABS", ["text"])


def test_registry_predicates():
    assert is_scalar_function("upper")
    assert not is_scalar_function("count")


# -- aggregates ------------------------------------------------------------------


def run_aggregate(name, values, star=False, distinct=False):
    accumulator = create_accumulator(name, star=star, distinct=distinct)
    for value in values:
        accumulator.add(value)
    return accumulator.result()


def test_count_skips_nulls():
    assert run_aggregate("COUNT", [1, None, 2]) == 2


def test_count_star_counts_everything():
    assert run_aggregate("COUNT", [1, None, 2], star=True) == 3


def test_count_empty_is_zero():
    assert run_aggregate("COUNT", []) == 0


def test_sum_int_stays_int():
    result = run_aggregate("SUM", [1, 2, 3])
    assert result == 6 and isinstance(result, int)


def test_sum_promotes_to_float():
    result = run_aggregate("SUM", [1, 2.5])
    assert result == 3.5 and isinstance(result, float)


def test_sum_empty_is_null():
    assert run_aggregate("SUM", [None]) is None
    assert run_aggregate("SUM", []) is None


def test_avg():
    assert run_aggregate("AVG", [1, 2, 3, None]) == 2.0
    assert run_aggregate("AVG", []) is None


def test_min_max():
    assert run_aggregate("MIN", [3, 1, None, 2]) == 1
    assert run_aggregate("MAX", ["a", "c", "b"]) == "c"
    assert run_aggregate("MIN", []) is None


def test_min_max_mixed_types_raise():
    with pytest.raises(ExecutionError):
        run_aggregate("MIN", [1, "a"])


def test_distinct_aggregates():
    assert run_aggregate("COUNT", [1, 1, 2, 2, 2], distinct=True) == 2
    assert run_aggregate("SUM", [5, 5, 3], distinct=True) == 8
    # 1 and 1.0 differ by type tag, SQL treats them as duplicates only
    # when equal AND same type under our marker; verify current contract.
    assert run_aggregate("COUNT", [1, 1.0], distinct=True) == 2


def test_sum_type_error():
    with pytest.raises(ExecutionError):
        run_aggregate("SUM", ["a"])


def test_count_star_distinct_invalid():
    with pytest.raises(ExecutionError):
        create_accumulator("COUNT", star=True, distinct=True)


def test_star_on_non_count_invalid():
    with pytest.raises(ExecutionError):
        create_accumulator("SUM", star=True)


def test_unknown_aggregate():
    with pytest.raises(ExecutionError):
        create_accumulator("MEDIAN")


def test_registry():
    assert is_aggregate_function("count")
    assert set(aggregate_names()) == {"AVG", "COUNT", "MAX", "MIN", "SUM"}
