"""Property tests for the accounting tokenizer and the cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.plan.cost import CostModel, TableStats

_STATS = {"t": TableStats(row_count=100)}
_TEXT = st.text(
    alphabet=st.characters(whitelist_categories=["Lu", "Ll", "Nd", "Po", "Zs"]),
    max_size=300,
)


@settings(max_examples=200, deadline=None)
@given(_TEXT)
def test_tokens_nonnegative_and_zero_only_for_blank(text):
    tokens = count_tokens(text)
    assert tokens >= 0
    if text.strip():
        assert tokens > 0


@settings(max_examples=200, deadline=None)
@given(_TEXT, _TEXT)
def test_tokens_subadditive_concatenation(left, right):
    combined = count_tokens(left + " " + right)
    assert combined <= count_tokens(left) + count_tokens(right) + 1


@settings(max_examples=200, deadline=None)
@given(_TEXT, st.integers(min_value=0, max_value=50))
def test_truncation_respects_budget_and_is_prefix(text, budget):
    cut = truncate_to_tokens(text, budget)
    assert count_tokens(cut) <= budget
    assert text.startswith(cut)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=10))
def test_scan_cost_monotone_in_rows(rows, columns):
    model = CostModel(_STATS, EngineConfig())
    small = model.scan_cost("t", rows, columns)
    bigger = model.scan_cost("t", rows + 50, columns)
    assert bigger.calls >= small.calls
    assert bigger.total_tokens >= small.total_tokens


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=300))
def test_lookup_cost_monotone_in_keys(keys):
    model = CostModel(_STATS, EngineConfig())
    small = model.lookup_cost(keys, 2)
    bigger = model.lookup_cost(keys + 10, 2)
    assert bigger.calls >= small.calls
    assert bigger.total_tokens > small.total_tokens


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=64))
def test_batching_never_increases_calls(batch):
    singles = CostModel(_STATS, EngineConfig(lookup_batch_size=1)).lookup_cost(40, 2)
    batched = CostModel(_STATS, EngineConfig(lookup_batch_size=batch)).lookup_cost(40, 2)
    assert batched.calls <= singles.calls


def test_estimates_compose():
    model = CostModel(_STATS, EngineConfig())
    a = model.scan_cost("t", 10, 2)
    b = model.lookup_cost(5, 1)
    combined = a.plus(b)
    assert combined.calls == a.calls + b.calls
    assert combined.total_tokens == a.total_tokens + b.total_tokens
