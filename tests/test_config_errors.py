"""Tests for configuration and the error hierarchy."""

import dataclasses

import pytest

from repro import errors
from repro.config import EngineConfig


def test_default_config_enables_optimizations():
    config = EngineConfig()
    assert config.enable_pushdown
    assert config.enable_lookup_join
    assert config.enable_cache
    assert config.votes == 1


def test_naive_config_disables_optimizations():
    config = EngineConfig.naive()
    assert not config.enable_pushdown
    assert not config.enable_lookup_join
    assert not config.enable_cache
    assert config.lookup_batch_size == 1


def test_with_replaces_fields():
    config = EngineConfig().with_(votes=5, page_size=7)
    assert config.votes == 5
    assert config.page_size == 7
    assert config.enable_pushdown  # untouched


def test_config_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        EngineConfig().votes = 3


def test_default_storage_mode_is_off():
    config = EngineConfig()
    assert config.storage_mode == "off"
    assert config.storage_budget_bytes > 0
    assert config.storage_ttl_s == 0.0


def test_invalid_storage_mode_rejected():
    with pytest.raises(errors.ConfigError, match="storage_mode"):
        EngineConfig(storage_mode="bogus")
    with pytest.raises(errors.ConfigError):
        EngineConfig().with_(storage_mode="cache")


def test_invalid_storage_budget_rejected():
    with pytest.raises(errors.ConfigError, match="storage_budget_bytes"):
        EngineConfig(storage_budget_bytes=0)
    with pytest.raises(errors.ConfigError, match="storage_budget_bytes"):
        EngineConfig(storage_budget_bytes=-100)


def test_invalid_storage_ttl_rejected():
    with pytest.raises(errors.ConfigError, match="storage_ttl_s"):
        EngineConfig(storage_ttl_s=-1.0)


def test_invalid_numeric_knobs_rejected():
    for field_name in (
        "page_size",
        "lookup_batch_size",
        "votes",
        "max_in_flight",
        "max_output_tokens",
    ):
        with pytest.raises(errors.ConfigError, match=field_name):
            EngineConfig(**{field_name: 0})


def test_valid_storage_modes_accepted():
    for mode in ("off", "result_cache", "materialize"):
        assert EngineConfig(storage_mode=mode).storage_mode == mode


def test_error_hierarchy_roots():
    for exc_type in [
        errors.ConfigError,
        errors.SQLError,
        errors.LexerError,
        errors.ParseError,
        errors.BindError,
        errors.CatalogError,
        errors.SchemaError,
        errors.ExecutionError,
        errors.PlanError,
        errors.LLMError,
        errors.LLMProtocolError,
        errors.LLMBudgetExceeded,
        errors.ValidationError,
        errors.WorkloadError,
    ]:
        assert issubclass(exc_type, errors.ReproError)


def test_lexer_error_carries_position():
    error = errors.LexerError("bad", position=5, line=2, column=3)
    assert error.position == 5
    assert "line 2" in str(error)


def test_budget_error_carries_usage():
    error = errors.LLMBudgetExceeded("out", calls_used=7, tokens_used=100)
    assert error.calls_used == 7
    assert error.tokens_used == 100


def test_parse_error_message_without_position():
    assert "boom" in str(errors.ParseError("boom"))
