"""Benchmark: regenerate table2 (accuracy) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import table2_accuracy
from repro.eval.reporting import artifact_path


def test_table2_accuracy(benchmark):
    artifact = benchmark.pedantic(table2_accuracy, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("table2_accuracy.txt"))
    assert path
