"""CI bench runner: run every benchmark, consolidate, gate regressions.

Runs each ``benchmarks/bench_*.py`` in its own pytest process, collects
pass/fail plus the machine-readable ``BENCH_<name>.json`` metrics the
benchmarks drop via :func:`repro.eval.reporting.save_metrics`, and
writes one consolidated ``BENCH_results.json``.  The run fails (exit 1)
when any benchmark fails, or when a metric named in
``benchmarks/baseline.json`` regresses below its recorded floor::

    {"floors": {"shard_scaling": {"speedup_8_shards": 3.0}, ...}}

Floors are *recorded* numbers (what the committed code demonstrably
achieves with margin), not aspirations: raise them when a PR raises the
measured value, so CI guards every speedup the repo has shipped.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --out bench-artifacts/BENCH_results.json \
        --baseline benchmarks/baseline.json

Artifacts (both the consolidated file and each benchmark's text/JSON
outputs) land under ``REPRO_RESULTS_DIR`` when set; the same variable
is forwarded to every benchmark process, so a persisted path makes the
whole run's outputs uploadable as one CI artifact.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time


def discover_benchmarks(bench_dir: str) -> list:
    return sorted(
        path
        for path in glob.glob(os.path.join(bench_dir, "bench_*.py"))
        if os.path.isfile(path)
    )


def run_benchmark(path: str, results_dir: str) -> dict:
    """One benchmark file in its own pytest process."""
    env = dict(os.environ)
    env["REPRO_RESULTS_DIR"] = results_dir
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(path))), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    started = time.monotonic()
    process = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    duration = time.monotonic() - started
    name = os.path.splitext(os.path.basename(path))[0]
    entry = {
        "name": name,
        "passed": process.returncode == 0,
        "duration_s": round(duration, 2),
    }
    if process.returncode != 0:
        entry["tail"] = process.stdout.splitlines()[-25:]
    return entry


def collect_metrics(results_dir: str) -> dict:
    """Read every BENCH_<name>.json a benchmark dropped."""
    metrics = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        name = os.path.splitext(os.path.basename(path))[0][len("BENCH_"):]
        if name == "results":
            continue  # a previous consolidated output
        try:
            with open(path, "r", encoding="utf-8") as handle:
                metrics[name] = json.load(handle)
        except (OSError, ValueError) as exc:
            metrics[name] = {"error": f"unreadable metrics file: {exc}"}
    return metrics


def check_floors(metrics: dict, baseline: dict) -> list:
    """Regressions of recorded floors; empty means the gate passes."""
    failures = []
    for bench, floors in baseline.get("floors", {}).items():
        bench_metrics = metrics.get(bench)
        if bench_metrics is None:
            failures.append(f"{bench}: no metrics emitted (expected floors)")
            continue
        for metric, floor in floors.items():
            value = bench_metrics.get(metric)
            if value is None:
                failures.append(f"{bench}.{metric}: metric missing")
            elif isinstance(floor, bool) or not isinstance(
                floor, (int, float)
            ):
                if value != floor:
                    failures.append(
                        f"{bench}.{metric}: expected {floor!r}, got {value!r}"
                    )
            elif not isinstance(value, (int, float)) or value < floor:
                failures.append(
                    f"{bench}.{metric}: {value!r} regressed below floor {floor!r}"
                )
    return failures


def write_step_summary(
    metrics: dict, baseline: dict, regressions: list, runs: list
) -> None:
    """Append a measured-vs-floor markdown table to $GITHUB_STEP_SUMMARY.

    Outside GitHub Actions (variable unset) this is a no-op, so local
    runs behave exactly as before.
    """
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = ["## Benchmark regression gate", ""]
    lines.append("| benchmark | metric | measured | floor | status |")
    lines.append("|---|---|---|---|---|")
    for bench in sorted(baseline.get("floors", {})):
        floors = baseline["floors"][bench]
        bench_metrics = metrics.get(bench) or {}
        for metric in sorted(floors):
            floor = floors[metric]
            value = bench_metrics.get(metric)
            if value is None:
                status = "missing"
            elif isinstance(floor, bool) or not isinstance(
                floor, (int, float)
            ):
                status = "ok" if value == floor else "REGRESSED"
            elif isinstance(value, (int, float)) and value >= floor:
                status = "ok"
            else:
                status = "REGRESSED"
            lines.append(
                f"| {bench} | {metric} | {value!r} | {floor!r} | {status} |"
            )
    failed = [run["name"] for run in runs if not run["passed"]]
    lines.append("")
    if failed:
        lines.append(f"**Failed benchmarks:** {', '.join(failed)}")
    if regressions:
        lines.append("")
        lines.append("**Regressions:**")
        lines.extend(f"- {regression}" for regression in regressions)
    if not failed and not regressions:
        lines.append("All benchmarks passed; no floor regressions.")
    try:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as exc:
        print(f"could not write step summary: {exc}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=None,
        help="consolidated output path (default: <results dir>/BENCH_results.json)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "baseline.json"),
        help="recorded floors to gate against (no gate if missing)",
    )
    parser.add_argument(
        "--bench-dir",
        default=os.path.dirname(os.path.abspath(__file__)),
        help="directory holding bench_*.py files",
    )
    args = parser.parse_args(argv)

    results_dir = os.environ.get("REPRO_RESULTS_DIR") or os.path.abspath(
        "bench-results"
    )
    os.makedirs(results_dir, exist_ok=True)
    out_path = args.out or os.path.join(results_dir, "BENCH_results.json")

    # A reused results directory must not leak a previous run's metrics
    # into this run's gate: a bench that stopped emitting its floors
    # has to fail loudly, not pass on stale numbers.
    for stale in glob.glob(os.path.join(results_dir, "BENCH_*.json")):
        os.remove(stale)

    benchmarks = discover_benchmarks(args.bench_dir)
    if not benchmarks:
        print(f"no benchmarks found under {args.bench_dir}", file=sys.stderr)
        return 1

    runs = []
    for path in benchmarks:
        print(f"running {os.path.basename(path)} ...", flush=True)
        entry = run_benchmark(path, results_dir)
        status = "ok" if entry["passed"] else "FAILED"
        print(f"  {status} in {entry['duration_s']}s", flush=True)
        runs.append(entry)

    metrics = collect_metrics(results_dir)

    baseline = {}
    if os.path.isfile(args.baseline):
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    regressions = check_floors(metrics, baseline)
    failed = [run["name"] for run in runs if not run["passed"]]

    consolidated = {
        "benchmarks": runs,
        "metrics": metrics,
        "baseline_floors": baseline.get("floors", {}),
        "regressions": regressions,
        "totals": {
            "run": len(runs),
            "failed": len(failed),
            "wall_s": round(sum(run["duration_s"] for run in runs), 2),
        },
    }
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(consolidated, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    write_step_summary(metrics, baseline, regressions, runs)

    if failed:
        print(f"benchmark failures: {', '.join(failed)}", file=sys.stderr)
    for regression in regressions:
        print(f"regression: {regression}", file=sys.stderr)
    return 1 if failed or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
