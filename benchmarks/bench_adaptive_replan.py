"""Benchmark: adaptive statistics vs badly-wrong static estimates.

The optimizer prices every plan off registered ``row_estimate`` hints.
When those hints are badly wrong — here a 240-row dimension table
registered as 8 rows — the static planner keeps choosing a "cheap" full
scan for every join, paying 12 pages per query.  With
``enable_adaptive=True`` the first full enumeration teaches the
statistics catalog the real cardinality, and every later join flips to
a batched point lookup over exactly the keys it needs.

Acceptance bar:

* every query's result table is **byte-identical** to the static
  engine's, and
* the workload needs at least **2x fewer model calls** with
  ``enable_adaptive=True``.

The artifact also records the estimated-vs-observed selectivity the
catalog learns for the residual (non-pushable) predicate of a streamed
LIMIT query — the shape whose divergence triggers a mid-query re-plan.
"""

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.llm.world import World
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

SEED = 3

_KINDS = ["bolt", "nut", "gear", "washer", "bracket", "spring"]

PARTS_SCHEMA = TableSchema(
    name="parts",
    columns=(
        Column("part_id", DataType.TEXT, nullable=False),
        Column("kind", DataType.TEXT),
        Column("weight", DataType.REAL),
    ),
    primary_key=("part_id",),
    description="parts catalog",
)
ORDERS_SCHEMA = TableSchema(
    name="orders",
    columns=(
        Column("order_id", DataType.TEXT, nullable=False),
        Column("part_id", DataType.TEXT),
        Column("qty", DataType.INTEGER),
    ),
    primary_key=("order_id",),
    description="orders",
)


def shop_world(n_parts: int = 240, n_orders: int = 40) -> World:
    parts = [
        (f"P{i:04d}", _KINDS[i % len(_KINDS)], round(0.1 * (i % 50) + 0.5, 1))
        for i in range(n_parts)
    ]
    orders = [
        (f"O{i:03d}", f"P{(i * 7) % n_parts:04d}", (i % 9) + 1)
        for i in range(n_orders)
    ]
    return World(
        "shop", [Table(PARTS_SCHEMA, parts), Table(ORDERS_SCHEMA, orders)]
    )


#: Join workload: the parts side is misestimated 30x too small, so the
#: static planner full-scans it (12 pages) for every query.
WORKLOAD = [
    "SELECT o.order_id, p.kind FROM orders o "
    "JOIN parts p ON p.part_id = o.part_id WHERE o.qty > %d" % q
    for q in (7, 6, 8, 5, 4, 3, 2)
]

#: A streamed LIMIT query whose CASE predicate cannot ship to the model:
#: its estimated residual selectivity is what the catalog corrects.
RESIDUAL_QUERY = (
    "SELECT part_id FROM parts "
    "WHERE CASE WHEN weight > 5.0 THEN 1 ELSE 0 END = 1 LIMIT 5"
)


def run_workload(adaptive: bool):
    world = shop_world()
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=SEED)
    engine = LLMStorageEngine(
        model,
        config=EngineConfig(enable_adaptive=adaptive, enable_cache=False),
    )
    engine.register_virtual_table(PARTS_SCHEMA, row_estimate=8)  # truth: 240
    engine.register_virtual_table(ORDERS_SCHEMA, row_estimate=40)
    rows = [
        tuple(map(tuple, engine.execute(sql).rows)) for sql in WORKLOAD
    ]
    residual_rows = tuple(map(tuple, engine.execute(RESIDUAL_QUERY).rows))
    observed_sel = None
    catalog = engine.stats_catalog
    for (table, fingerprint), _acc in list(
        catalog._predicates.items()
    ):  # introspection only
        if table == "parts" and "CASE" in fingerprint:
            observed_sel = catalog.observed_selectivity(table, fingerprint)
    stats = {
        "rows": rows,
        "residual_rows": residual_rows,
        "usage": engine.usage,
        "observed_parts": catalog.observed_rows("parts"),
        "observed_residual_sel": observed_sel,
        "replans": catalog.replans,
    }
    engine.close()
    return stats


def test_adaptive_statistics_call_reduction(benchmark):
    results = {}

    def sweep():
        results["static"] = run_workload(adaptive=False)
        results["adaptive"] = run_workload(adaptive=True)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    static, adaptive = results["static"], results["adaptive"]
    assert adaptive["rows"] == static["rows"], "join results diverged"
    assert (
        adaptive["residual_rows"] == static["residual_rows"]
    ), "streamed LIMIT results diverged"
    assert adaptive["observed_parts"] == 240

    artifact = ResultTable(
        title="Adaptive statistics: wrong estimates vs learned cardinality",
        columns=["mode", "calls", "total_tokens", "replans"],
    )
    for mode in ("static", "adaptive"):
        usage = results[mode]["usage"]
        artifact.add_row(
            mode, usage.calls, usage.total_tokens, results[mode]["replans"]
        )
    # Estimated vs observed selectivity of the residual CASE predicate:
    # the static planner guesses the equality constant; the catalog
    # learns what the data actually says.
    from repro.plan.cost import SEL_EQ

    observed = adaptive["observed_residual_sel"]
    artifact.add_note(
        "parts cardinality: static estimate 8, observed 240 "
        "(scan -> lookup-join flip after query 1)"
    )
    artifact.add_note(
        f"residual CASE predicate selectivity: est={SEL_EQ:.3f} "
        f"observed={observed:.3f}"
        if observed is not None
        else "residual CASE predicate selectivity: not observed"
    )
    path = artifact.save(artifact_path("bench_adaptive_replan.txt"))
    assert path

    static_calls = static["usage"].calls
    adaptive_calls = adaptive["usage"].calls
    reduction = static_calls / max(1, adaptive_calls)
    save_metrics(
        "adaptive_replan",
        {
            "call_reduction_adaptive": round(reduction, 3),
            "calls_static": static_calls,
            "calls_adaptive": adaptive_calls,
            "observed_parts_rows": adaptive["observed_parts"],
            "byte_identical": True,
        },
    )
    assert reduction >= 2.0, (
        f"expected >=2x fewer model calls with enable_adaptive; "
        f"got {static_calls} -> {adaptive_calls} ({reduction:.1f}x)"
    )
