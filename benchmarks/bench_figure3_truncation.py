"""Benchmark: regenerate figure3 (truncation) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import figure3_truncation
from repro.eval.reporting import artifact_path


def test_figure3_truncation(benchmark):
    artifact = benchmark.pedantic(figure3_truncation, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("figure3_truncation.txt"))
    assert path
