"""Benchmark: regenerate table1 (workloads) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import table1_workloads
from repro.eval.reporting import artifact_path


def test_table1_workloads(benchmark):
    artifact = benchmark.pedantic(table1_workloads, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("table1_workloads.txt"))
    assert path
