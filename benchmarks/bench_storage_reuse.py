"""Benchmark: storage-tier reuse on a repeated/overlapping workload.

An interactive session rarely asks brand-new questions: it repeats
queries (dashboards, retries, formatting variants) and asks overlapping
ones (same rows, different projections/limits).  The adaptive
materialization tier (`storage_mode=materialize`) must turn that
redundancy into call savings without changing a single byte of output.

Acceptance bar:

* every query's result table is byte-identical to the storage-off
  engine, and
* the workload needs at least **5x fewer model calls** with
  ``storage_mode=materialize`` than with ``off``.
"""

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 11

# One "session": repeated queries, formatting/alias variants, and
# overlapping projections/limits over the same hot rows.
BASE_QUERIES = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "select name, population from countries where continent = 'Europe'",
    "SELECT c.name, c.population FROM countries AS c "
    "WHERE c.continent = 'Europe'",
    "SELECT name FROM countries WHERE continent = 'Europe'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 5",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT population FROM countries WHERE name = 'Germany'",
    "SELECT name, gdp FROM countries WHERE continent = 'Asia'",
    "SELECT name FROM countries WHERE continent = 'Asia'",
]

#: The session replays its question mix this many times.
ROUNDS = 3

WORKLOAD = BASE_QUERIES * ROUNDS


def run_workload(storage_mode: str):
    world = all_worlds()["geography"]
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=SEED)
    engine = LLMStorageEngine(
        model, config=EngineConfig(storage_mode=storage_mode)
    )
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    rows = [
        tuple(map(tuple, engine.execute(sql).rows)) for sql in WORKLOAD
    ]
    return rows, engine.usage


def test_storage_reuse_call_reduction(benchmark):
    results = {}

    def sweep():
        for mode in ("off", "result_cache", "materialize"):
            results[mode] = run_workload(mode)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    off_rows, off_usage = results["off"]
    artifact = ResultTable(
        title="Storage-tier reuse: repeated/overlapping workload",
        columns=[
            "storage_mode",
            "calls",
            "total_tokens",
            "result_hits",
            "fragment_hits",
            "calls_saved",
        ],
    )
    for mode in ("off", "result_cache", "materialize"):
        rows, usage = results[mode]
        assert rows == off_rows, f"results differ under storage_mode={mode}"
        artifact.add_row(
            mode,
            usage.calls,
            usage.total_tokens,
            usage.result_cache_hits,
            usage.fragment_hits,
            usage.calls_saved,
        )
    artifact.add_note(
        "byte-identical result tables across modes; savings come from "
        "result-cache hits and materialized fragment reuse"
    )
    path = artifact.save(artifact_path("bench_storage_reuse.txt"))
    assert path

    _, mat_usage = results["materialize"]
    assert mat_usage.calls > 0, "cold queries must still reach the model"
    reduction = off_usage.calls / max(1, mat_usage.calls)
    save_metrics(
        "storage_reuse",
        {
            "call_reduction_materialize": round(reduction, 3),
            "calls_off": off_usage.calls,
            "calls_materialize": mat_usage.calls,
            "byte_identical": True,
        },
    )
    assert reduction >= 5.0, (
        f"expected >=5x fewer model calls with storage_mode=materialize; "
        f"got {off_usage.calls} -> {mat_usage.calls} ({reduction:.1f}x)"
    )
