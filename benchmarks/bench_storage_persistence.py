"""Benchmark: persistent storage across a full process restart.

The model-as-storage framing only pays off at scale if retrieved
knowledge outlives the process: re-asking the model is orders of
magnitude more expensive than re-reading a local store.  With
``storage_backend='sqlite'`` the materialization tier persists in one
WAL-mode file, so a *cold restart* (new engine, new model instance,
same store file) should replay a repeated workload almost entirely
from disk.

Acceptance bar:

* the restarted engine's result tables are byte-identical to the cold
  storage-off run, and
* the restart pays at least **5x fewer model calls** than the cold run
  (in practice ~0: every fragment and result is served persistently).
"""

import tempfile

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 13

WORKLOAD = [
    "SELECT name, population FROM countries WHERE continent = 'Europe'",
    "SELECT name, population FROM countries WHERE continent = 'Europe' "
    "ORDER BY population DESC LIMIT 5",
    "SELECT population FROM countries WHERE name = 'France'",
    "SELECT population FROM countries WHERE name = 'Germany'",
    "SELECT name, gdp FROM countries WHERE continent = 'Asia'",
    "SELECT COUNT(*) FROM cities",
]


def build_engine(config: EngineConfig) -> LLMStorageEngine:
    """A fresh engine + fresh model: what a process restart constructs."""
    world = all_worlds()["geography"]
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=SEED)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def run_workload(engine: LLMStorageEngine):
    rows = [tuple(map(tuple, engine.execute(sql).rows)) for sql in WORKLOAD]
    return rows, engine.usage


def test_cold_restart_call_reduction(benchmark):
    results = {}

    def sweep():
        with tempfile.TemporaryDirectory() as tmpdir:
            persistent = EngineConfig(
                storage_mode="materialize",
                storage_backend="sqlite",
                storage_path=f"{tmpdir}/tier.db",
                storage_scope="application",
            )
            results["off"] = run_workload(
                build_engine(EngineConfig(storage_mode="off"))
            )
            # Cold process: populates the store file.
            results["cold"] = run_workload(build_engine(persistent))
            # Restarted process: same file, brand-new engine and model.
            results["restart"] = run_workload(build_engine(persistent))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    off_rows, off_usage = results["off"]
    artifact = ResultTable(
        title="Persistent storage: cold process restart over one store file",
        columns=[
            "run",
            "calls",
            "total_tokens",
            "persistent_hits",
            "calls_saved",
        ],
    )
    for run in ("off", "cold", "restart"):
        rows, usage = results[run]
        assert rows == off_rows, f"results differ on run={run}"
        artifact.add_row(
            run,
            usage.calls,
            usage.total_tokens,
            usage.persistent_hits,
            usage.calls_saved,
        )
    artifact.add_note(
        "byte-identical result tables across runs; the restart serves "
        "from the shared SQLite tier instead of re-asking the model"
    )
    path = artifact.save(artifact_path("bench_storage_persistence.txt"))
    assert path

    _, cold_usage = results["cold"]
    _, restart_usage = results["restart"]
    assert cold_usage.calls > 0, "the cold run must reach the model"
    reduction = cold_usage.calls / max(1, restart_usage.calls)
    save_metrics(
        "storage_persistence",
        {
            "cold_restart_call_reduction": round(reduction, 3),
            "calls_cold": cold_usage.calls,
            "calls_restart": restart_usage.calls,
            "persistent_hits_restart": restart_usage.persistent_hits,
            "byte_identical": True,
        },
    )
    assert reduction >= 5.0, (
        f"expected >=5x fewer model calls across a cold restart; "
        f"got {cold_usage.calls} -> {restart_usage.calls} ({reduction:.1f}x)"
    )
