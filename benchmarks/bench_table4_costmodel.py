"""Benchmark: regenerate table4 (costmodel) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import table4_costmodel
from repro.eval.reporting import artifact_path


def test_table4_costmodel(benchmark):
    artifact = benchmark.pedantic(table4_costmodel, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("table4_costmodel.txt"))
    assert path
