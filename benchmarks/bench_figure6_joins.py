"""Benchmark: regenerate figure6 (joins) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import figure6_joins
from repro.eval.reporting import artifact_path


def test_figure6_joins(benchmark):
    artifact = benchmark.pedantic(figure6_joins, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("figure6_joins.txt"))
    assert path
