"""Benchmark: continuous cross-query batching vs per-query batching.

Serves the same statement sets three ways against identically
configured engines (``max_in_flight=8``, one session, shared caches):

* **serial** — one statement at a time through ``execute``;
* **per-query** — all statements at once through ``execute_many``,
  batching only within each query: every query's calls still share the
  session's ``max_in_flight=8`` dispatcher budget;
* **continuous** — the same ``execute_many`` over a slot-based request
  pool (``enable_continuous_batching``): retrieval calls from *all*
  in-flight queries coalesce into shared waves as slots free up, the
  way llama.cpp's ``examples/parallel`` server packs its slots, so the
  admission width — not the per-query budget — bounds throughput.

Throughput is compared on the session's deterministic simulated
critical path (``wall_ms``), the same clock every runtime benchmark in
this repo gates on.  Two sweeps:

* 32 concurrent single-lookup queries (the gated headline): the
  per-query mode is bound by ``total_model_ms / 8`` while the
  continuous pool is bound only by the longest single query;
* 48 concurrent mixed-scan queries: deeper per-query call chains and
  full 48-wide waves — its per-wave slot-occupancy trace is saved as
  the benchmark artifact.

The acceptance bar: rows are byte-identical (values and types) to
serial in every mode, session calls/tokens/cost are identical, and the
continuous pool clears 3x the per-query wall throughput at 32
concurrent queries.
"""

import json

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 11
MAX_IN_FLIGHT = 8

_WORLD = all_worlds()["movies"]
_DIRECTORS = [row[0] for row in _WORLD.table("directors").rows]

#: 32 distinct single-lookup statements: short per-query chains, so the
#: per-query mode's shared in-flight budget is the binding constraint.
LOOKUP_32 = [
    f"SELECT country FROM directors WHERE name = '{name}'"
    for name in _DIRECTORS
] + [
    f"SELECT born FROM directors WHERE name = '{name}'"
    for name in _DIRECTORS[:2]
]

#: 48 distinct scan statements with deeper call chains: fills whole
#: 48-wide waves, exercised for the slot-occupancy artifact.
SCAN_48 = (
    [
        f"SELECT title, year FROM movies WHERE director = '{name}'"
        for name in _DIRECTORS
    ]
    + [
        f"SELECT rating FROM movies WHERE director = '{name}' AND year >= 2000"
        for name in _DIRECTORS[:16]
    ]
    + [
        f"SELECT title FROM movies WHERE director = '{name}' AND rating >= 7.0"
        for name in _DIRECTORS[16:18]
    ]
)


def build_engine(continuous: bool, jobs: int) -> LLMStorageEngine:
    config = EngineConfig().with_(max_in_flight=MAX_IN_FLIGHT, serve_jobs=jobs)
    if continuous:
        config = config.with_(
            enable_continuous_batching=True, batch_slots=jobs
        )
    model = SimulatedLLM(_WORLD, noise=NoiseConfig(), seed=SEED)
    engine = LLMStorageEngine(model, config=config)
    for schema in _WORLD.schemas():
        engine.register_virtual_table(
            schema, row_estimate=_WORLD.row_count(schema.name)
        )
    return engine


def typed_rows(result):
    return tuple(
        tuple((type(value), value) for value in row) for row in result.rows
    )


def run_sweep(statements):
    """(serial, per-query, continuous) over one statement set."""
    jobs = len(statements)

    serial_engine = build_engine(continuous=False, jobs=jobs)
    serial_rows = [
        typed_rows(serial_engine.execute(sql)) for sql in statements
    ]

    pq_engine = build_engine(continuous=False, jobs=jobs)
    pq_rows = [
        typed_rows(r) for r in pq_engine.execute_many(statements, jobs=jobs)
    ]

    cb_engine = build_engine(continuous=True, jobs=jobs)
    cb_rows = [
        typed_rows(r) for r in cb_engine.execute_many(statements, jobs=jobs)
    ]
    wave_trace = list(cb_engine._session.batcher.wave_trace)
    batcher_stats = cb_engine._session.batcher.stats
    cb_engine.close()

    assert pq_rows == serial_rows, "per-query serving diverged from serial"
    assert cb_rows == serial_rows, "continuous batching diverged from serial"
    for mode_usage in (pq_engine.usage, cb_engine.usage):
        assert mode_usage.calls == serial_engine.usage.calls
        assert mode_usage.total_tokens == serial_engine.usage.total_tokens
        assert mode_usage.cost_usd == serial_engine.usage.cost_usd

    return {
        "jobs": jobs,
        "wall_serial": serial_engine.usage.wall_ms,
        "wall_per_query": pq_engine.usage.wall_ms,
        "wall_continuous": cb_engine.usage.wall_ms,
        "speedup": pq_engine.usage.wall_ms / cb_engine.usage.wall_ms,
        "speedup_vs_serial": serial_engine.usage.wall_ms
        / cb_engine.usage.wall_ms,
        "calls": serial_engine.usage.calls,
        "wave_trace": wave_trace,
        "batcher_stats": batcher_stats,
    }


def test_continuous_batching(benchmark):
    outcome = {}

    def sweep():
        outcome["lookup32"] = run_sweep(LOOKUP_32)
        outcome["scan48"] = run_sweep(SCAN_48)
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lookup = outcome["lookup32"]
    scan = outcome["scan48"]

    artifact = ResultTable(
        title="Continuous cross-query batching vs per-query batching "
        f"(max_in_flight={MAX_IN_FLIGHT})",
        columns=[
            "workload",
            "jobs",
            "wall_serial",
            "wall_per_query",
            "wall_continuous",
            "speedup",
        ],
    )
    for label, sweep_result in (("lookup", lookup), ("scan", scan)):
        artifact.add_row(
            label,
            sweep_result["jobs"],
            round(sweep_result["wall_serial"]),
            round(sweep_result["wall_per_query"]),
            round(sweep_result["wall_continuous"]),
            f"{sweep_result['speedup']:.2f}x",
        )
    stats = scan["batcher_stats"]
    artifact.add_note(
        "byte-identical rows and identical calls/tokens/cost in every "
        f"mode; scan sweep packed {stats.submitted} raw calls into "
        f"{stats.waves} waves (widest {stats.max_batch})"
    )
    assert artifact.save(artifact_path("bench_continuous_batching.txt"))

    # Per-wave slot occupancy of the 48-query sweep: CI uploads this.
    trace_path = artifact_path("continuous_batching_waves.json")
    with open(trace_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "slots": scan["jobs"],
                "waves": scan["wave_trace"],
                "submitted": stats.submitted,
                "completed": stats.completed,
                "max_batch": stats.max_batch,
            },
            handle,
            indent=2,
        )

    save_metrics(
        "continuous_batching",
        {
            "throughput_speedup_32_queries": round(lookup["speedup"], 3),
            "throughput_speedup_48_queries": round(scan["speedup"], 3),
            "speedup_vs_serial_32_queries": round(
                lookup["speedup_vs_serial"], 3
            ),
            "wall_ms_per_query_32": round(lookup["wall_per_query"], 1),
            "wall_ms_continuous_32": round(lookup["wall_continuous"], 1),
            "waves_48": stats.waves,
            "max_batch_48": stats.max_batch,
            "byte_identical": True,
            "cost_identical_to_serial": True,
        },
    )
    assert lookup["speedup"] >= 3.0, (
        "expected >= 3x wall throughput at 32 concurrent queries, "
        f"got {lookup['speedup']:.2f}x"
    )
    assert scan["speedup"] >= 3.0
    assert stats.max_batch >= scan["jobs"] // 2, (
        "scan sweep never filled half the pool; continuous coalescing "
        "is not engaging"
    )
