"""Benchmark: concurrent serving throughput vs serial execution.

Serves a mixed scan/lookup workload of 8 statements with overlapping
tables (and two exact duplicates) two ways against identically
configured engines:

* **serial** — one statement at a time through ``execute``;
* **served** — all 8 at once through ``execute_many(jobs=8)``, sharing
  one ``max_in_flight`` dispatcher budget, one prompt cache, and the
  cross-query single-flight registry.

Throughput is compared on the session's simulated critical path
(``wall_ms``) — the same deterministic wall clock every runtime
benchmark in this repo gates on: the serial session's wall is the sum
of the per-query chains; the served session commits the batch makespan
(admission-width and dispatcher-budget bounds).  The model additionally
carries a small real per-call latency so the duplicate statements
genuinely overlap in flight, which is what makes the cross-query
single-flight join observable rather than timing-dependent luck.

The acceptance bar for the serving layer:

* per-query results are byte-identical (values and types) to serial,
* session calls and tokens are identical — overlapping queries pay for
  shared traffic exactly once, even while the duplicate requests are
  simultaneously in flight (observable as
  ``UsageSnapshot.dedup_hits > 0``),
* wall-clock throughput at 8 concurrent queries is at least 3x serial.
"""

import time

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.interface import CompletionOptions
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 11
JOBS = 8
SLEEP_S = 0.02  # real per-call latency: forces genuine in-flight overlap

# Mixed scans and lookup-joins over overlapping tables, plus two exact
# duplicates (5 of 1, 6 of 2) so concurrent admission overlaps
# identical in-flight traffic.
STATEMENTS = [
    "SELECT title, rating FROM movies WHERE rating >= 8.0",
    "SELECT COUNT(*) FROM movies",
    "SELECT m.title, d.country FROM movies m JOIN directors d "
    "ON m.director = d.name WHERE m.year >= 2000",
    "SELECT name FROM directors",
    "SELECT title, rating FROM movies WHERE rating >= 8.0",
    "SELECT COUNT(*) FROM movies",
    "SELECT title, year FROM movies WHERE year >= 2010",
    "SELECT d.name, COUNT(*) FROM movies m JOIN directors d "
    "ON m.director = d.name GROUP BY d.name",
]


class SleepingModel:
    """Adds fixed real latency per raw model call.

    The simulated model answers in microseconds, so without this the
    whole batch would finish before two queries ever had a call open at
    the same time; the sleep keeps duplicate chains in flight together
    the way a networked model would.
    """

    def __init__(self, inner, sleep_s: float):
        self._inner = inner
        self._sleep_s = sleep_s

    @property
    def model_name(self) -> str:
        return self._inner.model_name

    def complete(self, prompt, options=CompletionOptions()):
        time.sleep(self._sleep_s)
        return self._inner.complete(prompt, options)


def build_engine():
    world = all_worlds()["movies"]
    model = SleepingModel(
        SimulatedLLM(world, noise=NoiseConfig(), seed=SEED), SLEEP_S
    )
    config = EngineConfig().with_(max_in_flight=16, serve_jobs=JOBS)
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def typed_rows(result):
    return tuple(
        tuple((type(value), value) for value in row) for row in result.rows
    )


def run_serial():
    engine = build_engine()
    started = time.monotonic()
    results = [engine.execute(sql) for sql in STATEMENTS]
    elapsed = time.monotonic() - started
    return results, engine.usage, elapsed


def run_served():
    engine = build_engine()
    started = time.monotonic()
    results = engine.execute_many(STATEMENTS, jobs=JOBS)
    elapsed = time.monotonic() - started
    return results, engine.usage, elapsed


def test_serving_throughput(benchmark):
    outcome = {}

    def sweep():
        outcome["serial"] = run_serial()
        outcome["served"] = run_served()
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial_results, serial_usage, serial_s = outcome["serial"]
    served_results, served_usage, served_s = outcome["served"]

    for index, (serial_result, served_result) in enumerate(
        zip(serial_results, served_results)
    ):
        assert typed_rows(served_result) == typed_rows(serial_result), (
            f"statement {index} differs under concurrent serving"
        )
    assert served_usage.calls == serial_usage.calls
    assert served_usage.total_tokens == serial_usage.total_tokens
    assert served_usage.dedup_hits > 0, (
        "overlapping duplicate statements never joined an in-flight call"
    )

    speedup = serial_usage.wall_ms / served_usage.wall_ms
    artifact = ResultTable(
        title=f"Serving throughput: {JOBS} concurrent statements, one session",
        columns=[
            "mode",
            "wall_ms",
            "elapsed_s",
            "calls",
            "total_tokens",
            "dedup_hits",
        ],
    )
    artifact.add_row(
        "serial", round(serial_usage.wall_ms), round(serial_s, 3),
        serial_usage.calls, serial_usage.total_tokens,
        serial_usage.dedup_hits,
    )
    artifact.add_row(
        f"served (jobs={JOBS})", round(served_usage.wall_ms),
        round(served_s, 3), served_usage.calls, served_usage.total_tokens,
        served_usage.dedup_hits,
    )
    artifact.add_note(
        f"{speedup:.2f}x wall-clock throughput (simulated critical path); "
        "byte-identical rows; identical calls/tokens — cross-query "
        "single-flight pays shared in-flight traffic once"
    )
    path = artifact.save(artifact_path("bench_serving_throughput.txt"))
    assert path

    save_metrics(
        "serving_throughput",
        {
            "throughput_speedup_8_jobs": round(speedup, 3),
            "wall_ms_serial": round(serial_usage.wall_ms, 1),
            "wall_ms_served": round(served_usage.wall_ms, 1),
            "elapsed_serial_s": round(serial_s, 3),
            "elapsed_served_s": round(served_s, 3),
            "dedup_hits": served_usage.dedup_hits,
            "byte_identical": True,
            "cost_identical_to_serial": True,
        },
    )
    assert speedup >= 3.0, (
        f"expected >= 3x throughput at {JOBS} concurrent queries, "
        f"got {speedup:.2f}x"
    )
