"""Benchmark: regenerate figure5 (voting) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import figure5_voting
from repro.eval.reporting import artifact_path


def test_figure5_voting(benchmark):
    artifact = benchmark.pedantic(figure5_voting, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("figure5_voting.txt"))
    assert path
