"""Benchmark: streaming early exit on a LIMIT/EXISTS-heavy workload.

The paper's dominant cost driver is how many tuples the model is asked
to enumerate.  A ``SELECT ... LIMIT 5`` whose filter must run locally
(CASE expressions, subquery comparisons — nothing the prompt grammar
can ship) used to fetch *every* page of the virtual table before local
compute threw almost all of it away; EXISTS probes did the same for a
single witness row.  The streaming row pipeline consumes such scans
page by page and closes the stream as soon as the quota of output rows
is met.

Acceptance bar:

* every query's result table is byte-identical to the materialized
  (``enable_streaming=False``) engine, and
* the workload needs at least **3x fewer model calls** (and fewer
  tokens) with streaming on.
"""

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 17

# LIMIT-heavy interactive traffic: top-N peeks behind filters the
# prompt grammar cannot ship (CASE / scalar subqueries), plus EXISTS
# probes.  Without streaming every one of these enumerates the whole
# 240-row (12-page) movies table.
QUERIES = [
    "SELECT title FROM movies "
    "WHERE CASE WHEN year >= 1990 THEN 1 ELSE 0 END = 1 LIMIT 5",
    "SELECT title, rating FROM movies "
    "WHERE CASE WHEN rating >= 6 THEN 1 ELSE 0 END = 1 LIMIT 5",
    "SELECT title, genre FROM movies "
    "WHERE CASE WHEN genre = 'drama' THEN 1 ELSE 0 END = 1 LIMIT 8",
    "SELECT director FROM movies "
    "WHERE CASE WHEN year >= 2000 THEN 1 ELSE 0 END = 1 LIMIT 10",
    "SELECT title FROM movies "
    "WHERE year > (SELECT MIN(born) FROM directors) LIMIT 3",
    "SELECT 1 WHERE EXISTS (SELECT title FROM movies "
    "WHERE CASE WHEN rating > 8 THEN 1 ELSE 0 END = 1)",
    "SELECT 1 WHERE EXISTS (SELECT year FROM movies "
    "WHERE CASE WHEN genre = 'sci-fi' THEN 1 ELSE 0 END = 1)",
]


def run_workload(streaming: bool):
    world = all_worlds()["movies"]
    model = SimulatedLLM(world, noise=NoiseConfig.perfect(), seed=SEED)
    engine = LLMStorageEngine(
        model, config=EngineConfig(enable_streaming=streaming)
    )
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    rows = [tuple(map(tuple, engine.execute(sql).rows)) for sql in QUERIES]
    return rows, engine.usage


def test_stream_earlyexit_call_reduction(benchmark):
    results = {}

    def sweep():
        for streaming in (False, True):
            results[streaming] = run_workload(streaming)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    off_rows, off_usage = results[False]
    on_rows, on_usage = results[True]
    assert on_rows == off_rows, "streaming changed a result"

    artifact = ResultTable(
        title="Streaming early exit: LIMIT/EXISTS-heavy workload",
        columns=[
            "streaming",
            "calls",
            "total_tokens",
            "pages_fetched",
            "pages_skipped",
        ],
    )
    for streaming in (False, True):
        _, usage = results[streaming]
        artifact.add_row(
            "on" if streaming else "off",
            usage.calls,
            usage.total_tokens,
            usage.pages_fetched,
            usage.pages_skipped,
        )
    artifact.add_note(
        "byte-identical result tables; the streamed pages are a prefix "
        "of the pages the materialized path fetches, so only the page "
        "count changes"
    )
    path = artifact.save(artifact_path("bench_stream_earlyexit.txt"))
    assert path

    assert on_usage.calls > 0, "streamed queries must still reach the model"
    call_reduction = off_usage.calls / max(1, on_usage.calls)
    token_reduction = off_usage.total_tokens / max(1, on_usage.total_tokens)
    save_metrics(
        "stream_earlyexit",
        {
            "call_reduction_streaming": round(call_reduction, 3),
            "token_reduction_streaming": round(token_reduction, 3),
            "calls_materialized": off_usage.calls,
            "calls_streaming": on_usage.calls,
            "pages_skipped": on_usage.pages_skipped,
            "byte_identical": True,
        },
    )
    assert call_reduction >= 3.0, (
        f"expected >=3x fewer model calls with streaming; "
        f"got {off_usage.calls} -> {on_usage.calls} ({call_reduction:.1f}x)"
    )
    assert token_reduction >= 3.0, (
        f"expected >=3x fewer tokens with streaming; "
        f"got {off_usage.total_tokens} -> {on_usage.total_tokens} "
        f"({token_reduction:.1f}x)"
    )
