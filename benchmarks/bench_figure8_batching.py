"""Benchmark: regenerate figure8 (batching) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import figure8_batching
from repro.eval.reporting import artifact_path


def test_figure8_batching(benchmark):
    artifact = benchmark.pedantic(figure8_batching, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("figure8_batching.txt"))
    assert path
