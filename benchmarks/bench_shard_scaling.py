"""Benchmark: sharded partition-parallel scan speedup.

Sweeps ``scan_shards`` over {1, 2, 4, 8} on a scan/aggregate-heavy
workload against the movies world (240 rows) and reports the simulated
critical path (``wall_ms``) per level.  The acceptance bar for the
sharded scan subsystem:

* rows are byte-identical at every shard count (stable shard-order
  concatenation; partial aggregates merge to the single-chain values),
* ``scan_shards=8`` reports at least a 3x critical-path speedup over
  the unsharded engine at the same ``max_in_flight``,
* the call count grows only by per-shard page rounding.

Prefetch is disabled on every level so the comparison isolates
sharding (speculative prefetch is the *other* way to overlap a scan).
"""

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 13
SWEEP = (1, 2, 4, 8)
MAX_IN_FLIGHT = 8

# Scan-heavy: full enumerations and aggregate-only queries, where the
# single sequential page chain is the whole critical path.
QUERIES = [
    "SELECT title, year, rating FROM movies",
    "SELECT director, COUNT(*), MIN(year), MAX(year) FROM movies GROUP BY director",
    "SELECT COUNT(*), SUM(year) FROM movies WHERE year >= 1980",
    # AVG over integers: partial sums are exact, so the merged average
    # is bit-identical (float AVG can re-associate in the last ulp).
    "SELECT genre, AVG(year) y FROM movies GROUP BY genre ORDER BY y DESC",
]


def run_workload(scan_shards: int):
    world = all_worlds()["movies"]
    model = SimulatedLLM(world, noise=NoiseConfig(), seed=SEED)
    config = EngineConfig().with_(
        scan_shards=scan_shards,
        shard_min_rows=8,
        max_in_flight=MAX_IN_FLIGHT,
        scan_prefetch_pages=0,
    )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    rows = [tuple(map(tuple, engine.execute(sql).rows)) for sql in QUERIES]
    return rows, engine.usage


def test_shard_scaling_speedup(benchmark):
    results = {}

    def sweep():
        for shards in SWEEP:
            results[shards] = run_workload(shards)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline_rows, baseline_usage = results[1]
    artifact = ResultTable(
        title="Sharded scans: simulated critical-path latency",
        columns=[
            "scan_shards",
            "calls",
            "shard_chains",
            "model_time_ms",
            "wall_ms",
            "speedup",
        ],
    )
    for shards in SWEEP:
        rows, usage = results[shards]
        assert rows == baseline_rows, f"results differ at scan_shards={shards}"
        artifact.add_row(
            shards,
            usage.calls,
            usage.shard_chains,
            round(usage.latency_ms),
            round(usage.wall_ms),
            round(baseline_usage.wall_ms / usage.wall_ms, 2),
        )
    artifact.add_note(
        "byte-identical rows at every shard count; wall_ms is the "
        "deterministic simulated critical path at max_in_flight="
        f"{MAX_IN_FLIGHT}"
    )
    path = artifact.save(artifact_path("bench_shard_scaling.txt"))
    assert path

    usage_8 = results[8][1]
    speedup_8 = baseline_usage.wall_ms / usage_8.wall_ms
    save_metrics(
        "shard_scaling",
        {
            "speedup_8_shards": round(speedup_8, 3),
            "wall_ms_unsharded": round(baseline_usage.wall_ms, 1),
            "wall_ms_8_shards": round(usage_8.wall_ms, 1),
            "calls_unsharded": baseline_usage.calls,
            "calls_8_shards": usage_8.calls,
            "shard_chains_8_shards": usage_8.shard_chains,
            "byte_identical": True,
        },
    )
    assert speedup_8 >= 3.0, (
        f"expected >= 3x at scan_shards=8, got {speedup_8:.2f}x"
    )
    # Sharding must only pay page-rounding overhead, not refetch rows.
    assert usage_8.calls <= baseline_usage.calls + 8 * len(QUERIES)


def test_shard_scaling_pays_only_page_rounding():
    _, baseline_usage = run_workload(1)
    _, usage = run_workload(8)
    assert usage.total_tokens == pytest.approx(
        baseline_usage.total_tokens, rel=0.25
    )
