"""Benchmark: observability must be free when off, cheap when on.

Runs a join+aggregate workload against the movies world four ways —
tracing off and on, at ``max_in_flight`` 1 and 8 — and asserts the
observability contract:

* rows are byte-identical with tracing on vs off at both levels,
* usage totals (calls, tokens, simulated wall) match to the digit —
  instrumentation never perturbs the deterministic accounting,
* the traced run's *host* time stays under the recorded overhead
  ceiling (``ceilings.observability_overhead`` in ``baseline.json``),
  measured as a min-of-rounds ratio to absorb scheduler jitter.

Also exports the traced run's span trees as ``trace.jsonl`` so the CI
bench job uploads a real sample trace as a workflow artifact.
"""

import json
import os
import time

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM
from repro.obs.export import write_trace_jsonl

SEED = 7
ROUNDS = 3
LEVELS = (1, 8)

QUERIES = [
    "SELECT m.title, d.country FROM movies m JOIN directors d "
    "ON m.director = d.name WHERE m.year >= 2000",
    "SELECT d.name, COUNT(*) FROM movies m JOIN directors d "
    "ON m.director = d.name GROUP BY d.name",
    "SELECT title, rating FROM movies WHERE rating >= 8.0 "
    "ORDER BY rating DESC LIMIT 10",
]


def overhead_ceiling() -> float:
    baseline_path = os.path.join(os.path.dirname(__file__), "baseline.json")
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        return float(baseline["ceilings"]["observability_overhead"])
    except (OSError, KeyError, ValueError, TypeError):
        return 1.75


def build_engine(max_in_flight: int, tracing: bool) -> LLMStorageEngine:
    world = all_worlds()["movies"]
    model = SimulatedLLM(world, noise=NoiseConfig(), seed=SEED)
    config = EngineConfig().with_(
        max_in_flight=max_in_flight,
        lookup_batch_size=8,
        enable_tracing=tracing,
    )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    return engine


def run_workload(max_in_flight: int, tracing: bool):
    """Best host time over ROUNDS fresh engines, plus one run's outputs."""
    best = float("inf")
    rows = usage = engine = None
    for _ in range(ROUNDS):
        engine = build_engine(max_in_flight, tracing)
        start = time.perf_counter()
        rows = [
            tuple(map(tuple, engine.execute(sql).rows)) for sql in QUERIES
        ]
        best = min(best, time.perf_counter() - start)
    usage = engine.usage
    return rows, usage, best, engine


def test_observability_overhead(benchmark):
    results = {}

    def sweep():
        for level in LEVELS:
            for tracing in (False, True):
                results[(level, tracing)] = run_workload(level, tracing)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    ceiling = overhead_ceiling()
    artifact = ResultTable(
        title="Observability overhead: tracing on vs off (host time)",
        columns=[
            "max_in_flight",
            "host_ms_off",
            "host_ms_on",
            "overhead",
            "spans",
        ],
    )
    byte_identical = True
    wall_identical = True
    ratios = {}
    for level in LEVELS:
        rows_off, usage_off, host_off, _ = results[(level, False)]
        rows_on, usage_on, host_on, traced = results[(level, True)]
        byte_identical &= rows_off == rows_on
        wall_identical &= (
            usage_off.calls == usage_on.calls
            and usage_off.total_tokens == usage_on.total_tokens
            and round(usage_off.wall_ms, 6) == round(usage_on.wall_ms, 6)
            and round(usage_off.latency_ms, 6)
            == round(usage_on.latency_ms, 6)
        )
        ratio = host_on / host_off if host_off > 0 else 1.0
        ratios[level] = ratio
        spans = sum(len(t.spans) for t in traced.observability.traces)
        artifact.add_row(
            level,
            round(host_off * 1000, 2),
            round(host_on * 1000, 2),
            round(ratio, 3),
            spans,
        )
    artifact.add_note(
        f"min-of-{ROUNDS} host time per cell; ceiling {ceiling}x; "
        "rows and usage identical on/off at both levels"
    )
    assert artifact.save(artifact_path("bench_observability_overhead.txt"))

    # Ship a real trace sample as a CI artifact.
    sample_engine = results[(8, True)][3]
    trace_path = artifact_path("trace.jsonl")
    span_count = write_trace_jsonl(
        trace_path, sample_engine.observability.traces
    )

    worst = max(ratios.values())
    overhead_ok = worst <= ceiling
    save_metrics(
        "observability_overhead",
        {
            "byte_identical": byte_identical,
            "wall_identical": wall_identical,
            "overhead_under_ceiling": overhead_ok,
            "overhead_ratio_mif1": round(ratios[1], 3),
            "overhead_ratio_mif8": round(ratios[8], 3),
            "overhead_ceiling": ceiling,
            "trace_spans_exported": span_count,
        },
    )
    assert byte_identical, "tracing changed result rows"
    assert wall_identical, "tracing perturbed usage accounting"
    assert span_count > 0, "traced run exported no spans"
    assert overhead_ok, (
        f"traced overhead {worst:.2f}x exceeds ceiling {ceiling}x"
    )
