"""Benchmark configuration.

Each benchmark wraps one experiment runner (quick-sized) so
``pytest benchmarks/ --benchmark-only`` both times the harness and
regenerates a small version of every artifact under ``results/``.

Artifacts default to a scratch directory so local runs never dirty the
tree — but an explicit ``REPRO_RESULTS_DIR`` wins, which is how the CI
bench job persists ``BENCH_*.json`` metrics for the consolidated
``BENCH_results.json`` artifact (see ``benchmarks/run_benchmarks.py``).
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _results_dir(tmp_path_factory, monkeypatch):
    """Redirect artifacts to scratch unless the caller pinned a path."""
    if os.environ.get("REPRO_RESULTS_DIR"):
        yield
        return
    scratch = tmp_path_factory.mktemp("bench-results")
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(scratch))
    yield
