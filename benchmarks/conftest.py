"""Benchmark configuration.

Each benchmark wraps one experiment runner (quick-sized) so
``pytest benchmarks/ --benchmark-only`` both times the harness and
regenerates a small version of every artifact under ``results/``.
"""

import pytest


@pytest.fixture(autouse=True)
def _results_dir(tmp_path_factory, monkeypatch):
    """Benchmarks write artifacts into a scratch results directory."""
    scratch = tmp_path_factory.mktemp("bench-results")
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(scratch))
    yield
