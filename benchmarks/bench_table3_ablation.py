"""Benchmark: regenerate table3 (ablation) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import table3_ablation
from repro.eval.reporting import artifact_path


def test_table3_ablation(benchmark):
    artifact = benchmark.pedantic(table3_ablation, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("table3_ablation.txt"))
    assert path
