"""Benchmark: regenerate figure4 (pushdown) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import figure4_pushdown
from repro.eval.reporting import artifact_path


def test_figure4_pushdown(benchmark):
    artifact = benchmark.pedantic(figure4_pushdown, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("figure4_pushdown.txt"))
    assert path
