"""Benchmark: concurrent runtime speedup on a join+voting workload.

Sweeps ``max_in_flight`` over {1, 4, 16} on a join-heavy, vote-heavy
workload against the movies world and reports simulated critical-path
latency (``wall_ms``) per level.  The acceptance bar for the runtime:

* results are byte-identical across concurrency levels,
* token usage and call counts are identical (concurrency changes
  wall-clock only, never answers or cost),
* ``max_in_flight=16`` reports at least a 4x critical-path speedup over
  the sequential baseline.
"""

import pytest

from repro.config import EngineConfig
from repro.core.engine import LLMStorageEngine
from repro.eval.reporting import ResultTable, artifact_path, save_metrics
from repro.eval.worlds import all_worlds
from repro.llm.noise import NoiseConfig
from repro.llm.simulated import SimulatedLLM

SEED = 7
SWEEP = (1, 4, 16)

# Join-heavy with voting: every lookup/judge batch multiplies by votes,
# and the director join fans out one lookup wave per scan.
QUERIES = [
    "SELECT m.title, d.country FROM movies m JOIN directors d "
    "ON m.director = d.name WHERE m.year >= 2000",
    "SELECT d.name, COUNT(*) FROM movies m JOIN directors d "
    "ON m.director = d.name GROUP BY d.name",
    "SELECT title, rating FROM movies WHERE rating >= 8.0 "
    "ORDER BY rating DESC LIMIT 10",
]


def run_workload(max_in_flight: int):
    world = all_worlds()["movies"]
    model = SimulatedLLM(world, noise=NoiseConfig(), seed=SEED)
    config = EngineConfig().with_(
        votes=3,
        max_in_flight=max_in_flight,
        lookup_batch_size=8,
        scan_prefetch_pages=6,
    )
    engine = LLMStorageEngine(model, config=config)
    for schema in world.schemas():
        engine.register_virtual_table(
            schema, row_estimate=world.row_count(schema.name)
        )
    rows = [tuple(map(tuple, engine.execute(sql).rows)) for sql in QUERIES]
    return rows, engine.usage


def test_runtime_concurrency_speedup(benchmark):
    results = {}

    def sweep():
        for level in SWEEP:
            results[level] = run_workload(level)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline_rows, baseline_usage = results[1]
    artifact = ResultTable(
        title="Runtime concurrency: simulated critical-path latency",
        columns=[
            "max_in_flight",
            "calls",
            "total_tokens",
            "model_time_ms",
            "wall_ms",
            "speedup",
        ],
    )
    for level in SWEEP:
        rows, usage = results[level]
        assert rows == baseline_rows, f"results differ at max_in_flight={level}"
        assert usage.calls == baseline_usage.calls
        assert usage.total_tokens == baseline_usage.total_tokens
        assert usage.latency_ms == pytest.approx(baseline_usage.latency_ms)
        artifact.add_row(
            level,
            usage.calls,
            usage.total_tokens,
            round(usage.latency_ms),
            round(usage.wall_ms),
            round(baseline_usage.wall_ms / usage.wall_ms, 2),
        )
    artifact.add_note(
        "identical rows/tokens/calls at every level; wall_ms is the "
        "deterministic simulated critical path"
    )
    path = artifact.save(artifact_path("bench_runtime_concurrency.txt"))
    assert path

    speedup_16 = baseline_usage.wall_ms / results[16][1].wall_ms
    save_metrics(
        "runtime_concurrency",
        {
            "speedup_16_in_flight": round(speedup_16, 3),
            "wall_ms_sequential": round(baseline_usage.wall_ms, 1),
            "wall_ms_16_in_flight": round(results[16][1].wall_ms, 1),
            "calls": baseline_usage.calls,
            "byte_identical": True,
        },
    )
    assert speedup_16 >= 4.0, f"expected >= 4x at max_in_flight=16, got {speedup_16:.2f}x"
