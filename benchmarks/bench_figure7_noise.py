"""Benchmark: regenerate figure7 (noise) at quick size.

The benchmark times the full experiment pipeline — engine construction,
prompt traffic against the simulated model, metric computation — and
asserts the artifact is well-formed.
"""

from repro.eval.experiments import figure7_noise
from repro.eval.reporting import artifact_path


def test_figure7_noise(benchmark):
    artifact = benchmark.pedantic(figure7_noise, kwargs={"quick": True}, rounds=1, iterations=1)
    assert artifact.rows, "experiment produced no rows"
    path = artifact.save(artifact_path("figure7_noise.txt"))
    assert path
